/**
 * @file
 * Tests for the workload models: microbenchmark shapes (Table II),
 * the JSBS MediaContent graph and library table, the Spark application
 * specs (Figure 2 / Table III) and their object-graph builders, and
 * the phase-scaling math behind Figures 2 and 14.
 */

#include <gtest/gtest.h>

#include "heap/object.hh"
#include "heap/walker.hh"
#include "workloads/jsbs.hh"
#include "workloads/micro.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace {

using namespace workloads;

class MicroTest : public ::testing::Test
{
  protected:
    MicroTest() : micro(reg), heap(reg) {}

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap heap;
};

TEST_F(MicroTest, PaperNodeCountsMatchTableII)
{
    EXPECT_EQ(microBenchPaperNodes(MicroBench::TreeNarrow), 2'097'150u);
    EXPECT_EQ(microBenchPaperNodes(MicroBench::TreeWide), 19'173'960u);
    EXPECT_EQ(microBenchPaperNodes(MicroBench::ListSmall), 524'288u);
    EXPECT_EQ(microBenchPaperNodes(MicroBench::ListLarge), 2'097'152u);
    EXPECT_EQ(microBenchPaperNodes(MicroBench::GraphSparse), 4'096u);
}

TEST_F(MicroTest, TreeHasExactNodeCount)
{
    Rng rng(1);
    Addr root = micro.buildTree(heap, 2, 1000, rng);
    EXPECT_EQ(GraphWalker(heap).stats(root).objectCount, 1000u);
}

TEST_F(MicroTest, WideTreeFanout)
{
    Rng rng(1);
    Addr root = micro.buildTree(heap, 8, 9, rng);
    ObjectView rv(heap, root);
    // Root should have all 8 children populated.
    for (unsigned c = 1; c <= 8; ++c) {
        EXPECT_NE(rv.getRef(c), 0u) << "child " << c;
    }
}

TEST_F(MicroTest, ListIsAChain)
{
    Rng rng(1);
    Addr head = micro.buildList(heap, 64, rng);
    auto gs = GraphWalker(heap).stats(head);
    EXPECT_EQ(gs.objectCount, 64u);
    EXPECT_EQ(gs.maxDepth, 64u);
    EXPECT_EQ(gs.referenceEdges, 63u);
}

TEST_F(MicroTest, GraphHasRequestedDegree)
{
    Rng rng(1);
    Addr root = micro.buildGraph(heap, 32, 5, rng);
    // Root array + 32 nodes + 32 edge arrays.
    auto gs = GraphWalker(heap).stats(root);
    EXPECT_EQ(gs.objectCount, 1 + 32 + 32u);
    // Each node's neighbor array has 5 entries.
    ObjectView rv(heap, root);
    ObjectView n0(heap, rv.getRefElem(0));
    ObjectView adj(heap, n0.getRef(1));
    EXPECT_EQ(adj.length(), 5u);
}

TEST_F(MicroTest, BuildIsDeterministic)
{
    Heap h1(reg, 0x4'0000'0000ULL);
    Heap h2(reg, 0x8'0000'0000ULL);
    Addr r1 = micro.build(h1, MicroBench::GraphSparse, 64, 9);
    Addr r2 = micro.build(h2, MicroBench::GraphSparse, 64, 9);
    EXPECT_TRUE(graphEquals(h1, r1, h2, r2));
}

TEST_F(MicroTest, DifferentSeedsDiffer)
{
    Heap h1(reg, 0x4'0000'0000ULL);
    Heap h2(reg, 0x8'0000'0000ULL);
    Addr r1 = micro.build(h1, MicroBench::ListSmall, 512, 1);
    Addr r2 = micro.build(h2, MicroBench::ListSmall, 512, 2);
    EXPECT_FALSE(graphEquals(h1, r1, h2, r2));
}

TEST_F(MicroTest, ScaleDivisorShrinksGraphs)
{
    Heap h1(reg, 0x4'0000'0000ULL);
    Heap h2(reg, 0x8'0000'0000ULL);
    Addr r1 = micro.build(h1, MicroBench::TreeNarrow, 1024, 1);
    Addr r2 = micro.build(h2, MicroBench::TreeNarrow, 2048, 1);
    EXPECT_GT(GraphWalker(h1).stats(r1).objectCount,
              GraphWalker(h2).stats(r2).objectCount);
}

class JsbsTest : public ::testing::Test
{
  protected:
    JsbsTest() : jsbs(reg), heap(reg) {}

    KlassRegistry reg;
    JsbsWorkload jsbs;
    Heap heap;
};

TEST_F(JsbsTest, MediaContentShape)
{
    Addr mc = jsbs.buildMediaContent(heap);
    auto gs = GraphWalker(heap).stats(mc);
    // MediaContent + Media + persons array + 2 names + uri + title +
    // format + images array + 2 images + their strings.
    EXPECT_GT(gs.objectCount, 12u);
    EXPECT_LT(gs.objectCount, 25u);
    EXPECT_GT(gs.arrayCount, 6u); // strings are char[] arrays
    // One null: the small image's title (and media copyright).
    EXPECT_GE(gs.nullReferences, 2u);
}

TEST_F(JsbsTest, BatchContainsNIndependentGraphs)
{
    Addr batch = jsbs.buildBatch(heap, 5, 1);
    ObjectView bv(heap, batch);
    EXPECT_EQ(bv.length(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_NE(bv.getRefElem(i), 0u);
    }
}

TEST_F(JsbsTest, LibraryTableHas90Entries)
{
    // The paper's 88 suite libraries plus the two post-paper measured
    // backends (plaincode, hps).
    EXPECT_EQ(jsbsLibraries().size(), 90u);
}

TEST_F(JsbsTest, AnchorsPresentAndMeasured)
{
    int measured = 0;
    bool has_java = false, has_kryo = false, has_km = false;
    bool has_plain = false, has_hps = false;
    for (const auto &l : jsbsLibraries()) {
        if (l.measured) {
            ++measured;
        }
        has_java |= (l.name == "java-built-in");
        has_kryo |= (l.name == "kryo");
        has_km |= (l.name == "kryo-manual");
        has_plain |= (l.name == "plaincode" && l.measured);
        has_hps |= (l.name == "hps" && l.measured);
    }
    EXPECT_GE(measured, 4);
    EXPECT_TRUE(has_java);
    EXPECT_TRUE(has_kryo);
    EXPECT_TRUE(has_km);
    EXPECT_TRUE(has_plain);
    EXPECT_TRUE(has_hps);
}

TEST_F(JsbsTest, ProfileFactorsSane)
{
    for (const auto &l : jsbsLibraries()) {
        if (l.measured) {
            continue;
        }
        EXPECT_GT(l.serFactor, 0.0) << l.name;
        EXPECT_LT(l.serFactor, 10.0) << l.name;
        EXPECT_GT(l.deserFactor, 0.0) << l.name;
        EXPECT_GT(l.sizeFactor, 0.1) << l.name;
    }
}

class SparkTest : public ::testing::Test
{
  protected:
    SparkTest() : spark(reg), heap(reg) {}

    KlassRegistry reg;
    SparkWorkloads spark;
    Heap heap;
};

TEST_F(SparkTest, SixAppsMatchTableIII)
{
    const auto &apps = sparkApps();
    ASSERT_EQ(apps.size(), 6u);
    EXPECT_EQ(apps[0].name, "NWeight");
    EXPECT_EQ(apps[0].inputMB, 156u);
    EXPECT_EQ(apps[1].name, "SVM");
    EXPECT_EQ(apps[1].inputMB, 1740u);
    EXPECT_EQ(apps[4].name, "Terasort");
    EXPECT_EQ(apps[4].inputMB, 3072u);
}

TEST_F(SparkTest, PhasesSumToOne)
{
    for (const auto &app : sparkApps()) {
        const auto &p = app.javaPhases;
        EXPECT_NEAR(p.compute + p.gc + p.io + p.sd, 1.0, 1e-9)
            << app.name;
    }
}

TEST_F(SparkTest, SdShareMatchesFigure2Aggregates)
{
    double sum = 0, mx = 0;
    for (const auto &app : sparkApps()) {
        sum += app.javaPhases.sd;
        mx = std::max(mx, app.javaPhases.sd);
    }
    EXPECT_NEAR(sum / 6, 0.395, 0.05); // paper: 39.5%
    EXPECT_NEAR(mx, 0.909, 1e-6);      // paper: SVM 90.9%
}

TEST_F(SparkTest, ScalePhasesPreservesSumAndShrinksSd)
{
    PhaseBreakdown p{0.5, 0.1, 0.1, 0.3};
    auto q = scalePhases(p, 3.0);
    EXPECT_NEAR(q.compute + q.gc + q.io + q.sd, 1.0, 1e-9);
    EXPECT_LT(q.sd, p.sd);
    EXPECT_GT(q.compute, p.compute); // share grows as total shrinks
}

TEST_F(SparkTest, ProgramSpeedupAmdahl)
{
    PhaseBreakdown p{0.0, 0.0, 0.0, 1.0};
    EXPECT_NEAR(programSpeedup(p, 4.0), 4.0, 1e-9);
    PhaseBreakdown half{0.5, 0.0, 0.0, 0.5};
    // Infinite S/D speedup caps at 2x.
    EXPECT_NEAR(programSpeedup(half, 1e12), 2.0, 1e-6);
    // No speedup -> no change.
    EXPECT_NEAR(programSpeedup(half, 1.0), 1.0, 1e-9);
}

TEST_F(SparkTest, LabeledPointsShape)
{
    Addr batch = spark.buildLabeledPoints(heap, 10, 4, 1);
    auto gs = GraphWalker(heap).stats(batch);
    // batch array + 10 x (point + vector + double[]).
    EXPECT_EQ(gs.objectCount, 1 + 30u);
    ObjectView bv(heap, batch);
    ObjectView lp(heap, bv.getRefElem(0));
    double label = lp.getDouble(0);
    EXPECT_TRUE(label == 1.0 || label == -1.0);
    ObjectView vec(heap, lp.getRef(1));
    ObjectView values(heap, vec.getRef(0));
    EXPECT_EQ(values.length(), 4u);
}

TEST_F(SparkTest, TerasortRecordsAre100Bytes)
{
    Addr batch = spark.buildTerasortRecords(heap, 3, 1);
    ObjectView bv(heap, batch);
    ObjectView rec(heap, bv.getRefElem(0));
    EXPECT_EQ(ObjectView(heap, rec.getRef(0)).length(), 10u);
    EXPECT_EQ(ObjectView(heap, rec.getRef(1)).length(), 90u);
}

TEST_F(SparkTest, RatingsInRange)
{
    Addr batch = spark.buildRatings(heap, 50, 1);
    ObjectView bv(heap, batch);
    for (int i = 0; i < 50; ++i) {
        ObjectView r(heap, bv.getRefElem(i));
        EXPECT_GE(r.getDouble(2), 1.0);
        EXPECT_LE(r.getDouble(2), 5.0);
    }
}

TEST_F(SparkTest, EveryAppBuilds)
{
    Addr base = 0x4'0000'0000ULL;
    for (const auto &app : sparkApps()) {
        Heap h(reg, base);
        base += 0x10'0000'0000ULL;
        Addr root = spark.build(h, app.name, 256, 1);
        EXPECT_GT(GraphWalker(h).stats(root).objectCount, 10u)
            << app.name;
    }
}

TEST_F(SparkTest, UnknownAppIsFatal)
{
    EXPECT_DEATH(spark.build(heap, "NoSuchApp", 1, 1), "unknown");
}

} // namespace
} // namespace cereal
