/**
 * @file
 * Tests for the shuffle substrate: LZ codec correctness (property
 * round trips on random, repetitive, incompressible and real
 * serializer-stream inputs), compression behaviour, and shuffle-stage
 * timing sanity.
 */

#include <gtest/gtest.h>

#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "shuffle/shuffle.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using workloads::MicroWorkloads;

TEST(LzCodec, EmptyInput)
{
    LzCodec lz;
    auto c = lz.compress({});
    EXPECT_EQ(lz.decompress(c).size(), 0u);
}

TEST(LzCodec, TinyInputs)
{
    LzCodec lz;
    for (std::size_t n = 1; n <= 8; ++n) {
        std::vector<std::uint8_t> in(n, static_cast<std::uint8_t>(n));
        EXPECT_EQ(lz.decompress(lz.compress(in)), in) << n;
    }
}

TEST(LzCodec, RepetitiveDataCompressesWell)
{
    LzCodec lz;
    std::vector<std::uint8_t> in;
    for (int i = 0; i < 1000; ++i) {
        const char *s = "abcdefgh";
        in.insert(in.end(), s, s + 8);
    }
    auto c = lz.compress(in);
    EXPECT_LT(c.size(), in.size() / 10);
    EXPECT_EQ(lz.decompress(c), in);
}

TEST(LzCodec, IncompressibleDataSurvives)
{
    LzCodec lz;
    Rng rng(1);
    std::vector<std::uint8_t> in(10000);
    for (auto &b : in) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    auto c = lz.compress(in);
    // Random bytes: slight expansion allowed (run headers).
    EXPECT_LT(c.size(), in.size() * 11 / 10 + 16);
    EXPECT_EQ(lz.decompress(c), in);
}

TEST(LzCodec, OverlappingBackReferences)
{
    LzCodec lz;
    // 'aaaa...' forces offset-1 overlapping copies.
    std::vector<std::uint8_t> in(5000, 'a');
    auto c = lz.compress(in);
    EXPECT_LT(c.size(), 200u);
    EXPECT_EQ(lz.decompress(c), in);
}

TEST(LzCodec, RandomPropertyRoundTrip)
{
    LzCodec lz;
    Rng rng(42);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<std::uint8_t> in(rng.below(20000));
        // Mixed entropy: runs + random sections.
        std::size_t i = 0;
        while (i < in.size()) {
            if (rng.chance(0.5)) {
                std::uint8_t v = static_cast<std::uint8_t>(rng.next());
                std::size_t run = std::min(in.size() - i,
                                           1 + rng.below(200));
                for (std::size_t k = 0; k < run; ++k) {
                    in[i++] = v;
                }
            } else {
                in[i++] = static_cast<std::uint8_t>(rng.next());
            }
        }
        ASSERT_EQ(lz.decompress(lz.compress(in)), in) << trial;
    }
}

TEST(LzCodec, SerializerStreamsRoundTrip)
{
    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap heap(reg);
    Rng rng(7);
    Addr root = micro.buildTree(heap, 2, 511, rng);

    LzCodec lz;
    JavaSerializer java;
    auto js = java.serialize(heap, root);
    EXPECT_EQ(lz.decompress(lz.compress(js)), js);
    KryoSerializer kryo;
    kryo.registerAll(reg);
    auto ks = kryo.serialize(heap, root);
    EXPECT_EQ(lz.decompress(lz.compress(ks)), ks);
    // Java streams are string-laden -> compressible.
    EXPECT_LT(lz.compress(js).size(), js.size());
}

TEST(LzCodec, NarratesWorkToSink)
{
    LzCodec lz;
    std::vector<std::uint8_t> in(4096, 'x');
    CountingSink sink;
    auto c = lz.compress(in, &sink);
    EXPECT_GT(sink.computeOps, in.size());
    EXPECT_GT(sink.loads, 0u);
    EXPECT_GT(sink.stores, 0u);

    CountingSink dsink;
    lz.decompress(c, &dsink);
    EXPECT_GT(dsink.computeOps, 0u);
}

TEST(ShuffleStage, SoftwarePathsTakeTime)
{
    ShuffleStage stage;
    std::vector<std::uint8_t> stream(100000, 'y');
    auto w = stage.softwareWrite(stream);
    auto r = stage.softwareRead(stream);
    EXPECT_GT(w.seconds, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_LT(w.wireBytes, stream.size()); // compressible
    EXPECT_EQ(w.wireBytes, r.wireBytes);
}

TEST(ShuffleStage, CerealHandoffIsCheaper)
{
    ShuffleStage stage;
    // Same byte volume, mixed-entropy content.
    Rng rng(3);
    std::vector<std::uint8_t> stream(200000);
    for (auto &b : stream) {
        b = static_cast<std::uint8_t>(rng.below(32));
    }
    auto sw = stage.softwareWrite(stream);
    auto hw = stage.cerealHandoff(stream.size());
    EXPECT_LT(hw.seconds, sw.seconds / 3);
}

TEST(ShuffleStage, EmptyStreamIsHandledOnAllPaths)
{
    // A node can shuffle a partition with zero records; the fabric
    // still frames whatever the stage produces.
    ShuffleStage stage;
    auto w = stage.softwareWrite({});
    auto r = stage.softwareRead({});
    // The codec's rawSize header still goes on the wire.
    EXPECT_GT(w.wireBytes, 0u);
    EXPECT_EQ(w.wireBytes, r.wireBytes);
    EXPECT_GE(w.seconds, 0.0);
    EXPECT_GE(r.seconds, 0.0);

    auto h = stage.cerealHandoff(0);
    EXPECT_EQ(h.wireBytes, 0u);
    EXPECT_GE(h.seconds, 0.0);
    // An empty handoff must not cost more than a real one.
    EXPECT_LT(h.seconds, stage.cerealHandoff(100000).seconds);
}

TEST(ShuffleStage, IncompressibleBlocksStillRoundTrip)
{
    ShuffleStage stage;
    Rng rng(11);
    std::vector<std::uint8_t> stream(50000);
    for (auto &b : stream) {
        b = static_cast<std::uint8_t>(rng.next());
    }
    auto w = stage.softwareWrite(stream);
    // Random bytes don't compress; wire size stays near input size
    // (token headers may expand it slightly) and the bytes survive.
    EXPECT_GE(w.wireBytes, stream.size() * 9 / 10);
    EXPECT_LE(w.wireBytes, stream.size() * 11 / 10 + 16);
    auto compressed = stage.codec().compress(stream);
    EXPECT_EQ(stage.codec().decompress(compressed), stream);
    EXPECT_EQ(w.wireBytes, compressed.size());

    // The read path pays at least the full output-byte copy cost.
    auto r = stage.softwareRead(stream);
    EXPECT_GT(r.seconds, 0.0);
}

TEST(ShuffleStage, CerealHandoffMovesExactStreamBytes)
{
    // The bulk-handoff path the cluster's Cereal backend feeds into
    // the fabric: wire bytes equal the packed stream, uncompressed.
    ShuffleStage stage;
    const std::uint64_t bytes = 123456;
    auto h = stage.cerealHandoff(bytes);
    EXPECT_EQ(h.wireBytes, bytes);
    EXPECT_GT(h.seconds, 0.0);
    // Cost is linear-ish in size: double the bytes, at least 1.5x the
    // time (copy + checksum passes dominate).
    auto h2 = stage.cerealHandoff(2 * bytes);
    EXPECT_GT(h2.seconds, h.seconds * 1.5);
}

TEST(ShuffleStage, CostScalesWithBytes)
{
    ShuffleStage stage;
    std::vector<std::uint8_t> small(10000, 'z');
    std::vector<std::uint8_t> big(100000, 'z');
    EXPECT_LT(stage.softwareWrite(small).seconds,
              stage.softwareWrite(big).seconds);
    EXPECT_LT(stage.cerealHandoff(10000).seconds,
              stage.cerealHandoff(100000).seconds);
}

} // namespace
} // namespace cereal
