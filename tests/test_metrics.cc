/**
 * @file
 * Tests for the time-series metrics layer: series kinds and sampling
 * semantics, ring-buffer bounding, prefix uniquification, RAII detach,
 * the StatGroup bridge, the disabled (no ambient recorder) path, the
 * three exporters (JSON/CSV/Prometheus), byte-determinism of sweep
 * metrics across thread counts on both the micro and cluster stacks,
 * and the pinned golden CSV of a small Figure-10-style run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "metrics/metrics.hh"
#include "runner/sweep_runner.hh"
#include "serde/registry.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using metrics::Group;
using metrics::MetricsRecorder;
using metrics::ScopedMetrics;

// ------------------------------------------------------- series kinds

TEST(Metrics, GaugeSamplesAtEveryCrossedBoundary)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    double v = 1.0;
    g.gauge("depth", "a depth", [&v](Tick) { return v; });

    g.tick(50); // no boundary crossed yet
    EXPECT_EQ(rec.series()[0].sampleCount(), 0u);

    g.tick(100); // boundary at 100
    v = 7.0;
    g.tick(350); // boundaries at 200, 300
    const auto samples = rec.series()[0].samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].tick, 100u);
    EXPECT_EQ(samples[0].value, 1.0);
    EXPECT_EQ(samples[1].tick, 200u);
    EXPECT_EQ(samples[1].value, 7.0);
    EXPECT_EQ(samples[2].tick, 300u);
}

TEST(Metrics, RateIsScaledDeltaPerIntervalTick)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    double counter = 40.0; // primed at registration
    g.rate("bw", "bytes per tick", [&counter] { return counter; }, 2.0);

    counter = 140.0;
    g.tick(100); // delta 100 over 100 ticks, scale 2 -> 2.0
    counter = 140.0;
    g.tick(200); // flat -> 0
    const auto samples = rec.series()[0].samples();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
    EXPECT_DOUBLE_EQ(samples[1].value, 0.0);
}

TEST(Metrics, RatioIsDeltaOverDeltaAndZeroWhenFlat)
{
    MetricsRecorder rec(10);
    Group g(&rec, "comp");
    double hits = 0, total = 0;
    g.ratio("hit_rate", "hits per access", [&hits] { return hits; },
            [&total] { return total; });

    hits = 3;
    total = 4;
    g.tick(10);
    g.tick(20); // both flat -> 0, not NaN
    const auto samples = rec.series()[0].samples();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_DOUBLE_EQ(samples[0].value, 0.75);
    EXPECT_DOUBLE_EQ(samples[1].value, 0.0);
}

TEST(Metrics, RingDropsOldestAndCounts)
{
    MetricsRecorder rec(1, 4);
    Group g(&rec, "comp");
    Tick t = 0;
    g.gauge("x", "", [&t](Tick) { return static_cast<double>(t); });
    for (t = 1; t <= 10; ++t) {
        g.tick(t);
    }
    const auto &s = rec.series()[0];
    EXPECT_EQ(s.sampleCount(), 4u);
    EXPECT_EQ(s.dropped(), 6u);
    const auto samples = s.samples();
    EXPECT_EQ(samples.front().tick, 7u); // oldest retained
    EXPECT_EQ(samples.back().tick, 10u);
    EXPECT_EQ(s.last().tick, 10u);
}

TEST(Metrics, BackwardClockProducesNoSamplesUntilHighWaterMark)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    g.gauge("x", "", [](Tick) { return 1.0; });
    g.tick(300); // samples at 100, 200, 300
    g.tick(50);  // a component restarting at ~0: nothing new
    g.tick(250); // still below the next boundary (400)
    EXPECT_EQ(rec.series()[0].sampleCount(), 3u);
    g.tick(400);
    EXPECT_EQ(rec.series()[0].sampleCount(), 4u);
}

// ------------------------------------------- registration and detach

TEST(Metrics, PrefixesAreUniquifiedLikeTraceTracks)
{
    MetricsRecorder rec;
    Group a(&rec, "cpu.core");
    Group b(&rec, "cpu.core");
    Group c(&rec, "cpu.core");
    a.gauge("ipc", "", [](Tick) { return 0.0; });
    b.gauge("ipc", "", [](Tick) { return 0.0; });
    c.gauge("ipc", "", [](Tick) { return 0.0; });
    EXPECT_EQ(rec.series()[0].name(), "cpu.core.ipc");
    EXPECT_EQ(rec.series()[1].name(), "cpu.core#1.ipc");
    EXPECT_EQ(rec.series()[2].name(), "cpu.core#2.ipc");
}

TEST(Metrics, DestroyedGroupStopsSamplingButKeepsSamples)
{
    MetricsRecorder rec(100);
    {
        Group g(&rec, "comp");
        // The closure references a stack local; detach-on-destroy is
        // what makes this registration pattern safe.
        double local = 5.0;
        g.gauge("x", "", [&local](Tick) { return local; });
        g.tick(100);
    }
    ASSERT_EQ(rec.series().size(), 1u);
    EXPECT_EQ(rec.series()[0].sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(rec.series()[0].samples()[0].value, 5.0);
}

TEST(Metrics, DisabledGroupIsANoOp)
{
    ASSERT_EQ(metrics::current(), nullptr);
    Group g(metrics::current(), "comp");
    EXPECT_FALSE(g.enabled());
    g.gauge("x", "", [](Tick) { return 1.0; });
    g.rate("y", "", [] { return 1.0; }, 1.0);
    g.ratio("z", "", [] { return 1.0; }, [] { return 1.0; });
    g.tick(1'000'000'000);
    SUCCEED(); // nothing registered anywhere, nothing crashed
}

TEST(Metrics, ScopedRecorderInstallsAndRestores)
{
    EXPECT_EQ(metrics::current(), nullptr);
    {
        MetricsRecorder rec;
        ScopedMetrics scope(rec);
        EXPECT_EQ(metrics::current(), &rec);
    }
    EXPECT_EQ(metrics::current(), nullptr);
}

TEST(Metrics, GaugeFromStatBridgesScalarsAndAverages)
{
    stats::StatGroup sg("dev");
    stats::Scalar reads;
    stats::Average lat;
    sg.add("reads", "read count", reads);
    sg.add("lat", "latency", lat);
    reads += 7;
    lat.sample(10);
    lat.sample(20);

    MetricsRecorder rec(100);
    Group g(&rec, "dev");
    g.gaugeFromStat(sg, "reads");
    g.gaugeFromStat(sg, "lat");
    g.tick(100);
    EXPECT_DOUBLE_EQ(rec.series()[0].last().value, 7.0);
    EXPECT_DOUBLE_EQ(rec.series()[1].last().value, 15.0);
}

TEST(Metrics, GaugeFromStatPanicsOnUnknownName)
{
    stats::StatGroup sg("dev");
    MetricsRecorder rec;
    Group g(&rec, "dev");
    EXPECT_DEATH(g.gaugeFromStat(sg, "nope"), "no stat");
}

// ----------------------------------------------------------- exports

TEST(MetricsExport, CsvIsLongFormWithHeader)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    g.gauge("depth", "", [](Tick t) { return static_cast<double>(t); });
    g.tick(200);

    std::ostringstream ss;
    metrics::writeCsv(ss, {{"pt", &rec}});
    EXPECT_EQ(ss.str(),
              "point,series,kind,tick,value\n"
              "pt,comp.depth,gauge,100,100\n"
              "pt,comp.depth,gauge,200,200\n");
}

TEST(MetricsExport, PromFamiliesAreContiguousAndSanitized)
{
    MetricsRecorder a(100), b(100);
    Group ga(&a, "mem.dram");
    Group gb(&b, "mem.dram");
    ga.gauge("bw", "bandwidth", [](Tick) { return 0.5; });
    gb.gauge("bw", "bandwidth", [](Tick) { return 0.25; });
    ga.tick(100);
    gb.tick(100);

    std::ostringstream ss;
    metrics::writeProm(ss, {{"p1", &a}, {"p2", &b}});
    const std::string doc = ss.str();
    EXPECT_EQ(doc,
              "# HELP cereal_mem_dram_bw bandwidth\n"
              "# TYPE cereal_mem_dram_bw gauge\n"
              "cereal_mem_dram_bw{point=\"p1\",series=\"mem.dram.bw\"}"
              " 0.5 100\n"
              "cereal_mem_dram_bw{point=\"p2\",series=\"mem.dram.bw\"}"
              " 0.25 100\n");
}

TEST(MetricsExport, PromSkipsEmptySeriesAndEscapesLabels)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    g.gauge("never", "", [](Tick) { return 0.0; });
    std::ostringstream ss;
    metrics::writeProm(ss, {{"quote\"back\\slash", &rec}});
    EXPECT_TRUE(ss.str().empty());

    g.tick(100);
    std::ostringstream ss2;
    metrics::writeProm(ss2, {{"quote\"back\\slash", &rec}});
    EXPECT_NE(ss2.str().find("point=\"quote\\\"back\\\\slash\""),
              std::string::npos);
}

TEST(MetricsExport, PromNameSanitizesToMetricCharset)
{
    EXPECT_EQ(metrics::promName("mem.dram.ch0.bw_util"),
              "cereal_mem_dram_ch0_bw_util");
    EXPECT_EQ(metrics::promName("cpu.core#1.ipc"),
              "cereal_cpu_core_1_ipc");
}

TEST(MetricsExport, JsonFragmentCarriesSeriesColumns)
{
    MetricsRecorder rec(100);
    Group g(&rec, "comp");
    g.gauge("x", "a help", [](Tick) { return 2.5; });
    g.tick(100);

    std::ostringstream ss;
    json::Writer w(ss, 0);
    w.beginObject();
    rec.writeJson(w);
    w.endObject();
    ASSERT_TRUE(w.balanced());
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"interval_ticks\":100"), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"comp.x\""), std::string::npos);
    EXPECT_NE(doc.find("\"kind\":\"gauge\""), std::string::npos);
    EXPECT_NE(doc.find("\"ticks\":[100]"), std::string::npos);
    EXPECT_NE(doc.find("\"values\":[2.5]"), std::string::npos);
}

// ----------------------------------------- sweep-level determinism

/** Figure-10-style two-point sweep with metrics on. */
runner::SweepRunner
runMicroSweep(unsigned threads)
{
    runner::SweepRunner sweep("metrics_unit");
    for (auto mb : {workloads::MicroBench::TreeNarrow,
                    workloads::MicroBench::ListSmall}) {
        sweep.add(workloads::microBenchName(mb), [mb](json::Writer &w) {
            KlassRegistry reg;
            workloads::MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, 1 << 15, 42);
            auto ser = serde::makeSerializer("kryo", &reg);
            auto ms = workloads::measureSoftware(*ser, src, root);
            auto mc = workloads::measureCereal(src, root);
            w.kv("sw_ser_s", ms.serSeconds);
            w.kv("accel_ser_s", mc.serSeconds);
        });
    }
    sweep.enableMetrics();
    sweep.run(threads);
    return sweep;
}

TEST(SweepMetrics, MicroMetricsAreByteIdenticalAcrossThreadCounts)
{
    auto serial = runMicroSweep(1);
    auto parallel = runMicroSweep(4);

    std::ostringstream cs, cp, ps, pp, js, jp;
    serial.writeMetricsCsv(cs);
    parallel.writeMetricsCsv(cp);
    serial.writeMetricsProm(ps);
    parallel.writeMetricsProm(pp);
    serial.writeJson(js);
    parallel.writeJson(jp);

    EXPECT_FALSE(cs.str().empty());
    EXPECT_EQ(cs.str(), cp.str());
    EXPECT_FALSE(ps.str().empty());
    EXPECT_EQ(ps.str(), pp.str());
    EXPECT_EQ(js.str(), jp.str());

    // The instrumented components all showed up.
    for (const char *needle :
         {"mem.dram.bw_util", "cpu.core.miss_window",
          "cereal.accel.su_busy_frac", "mem.dram.row_hit_rate"}) {
        EXPECT_NE(cs.str().find(needle), std::string::npos)
            << "missing series " << needle;
    }
}

/** Small cluster shuffle sweep with metrics on. */
runner::SweepRunner
runClusterSweep(unsigned threads)
{
    runner::SweepRunner sweep("cluster_metrics_unit");
    for (auto backend :
         {cluster::Backend::Kryo, cluster::Backend::Cereal}) {
        sweep.add(cluster::backendName(backend),
                  [backend](json::Writer &w) {
            cluster::ClusterConfig cfg;
            cfg.nodes = 4;
            cfg.backend = backend;
            cfg.scale = 1 << 20;
            cluster::ClusterSim sim(cfg);
            auto r = sim.runShuffle();
            w.kv("completion_s", r.completionSeconds);
        });
    }
    sweep.enableMetrics();
    sweep.run(threads);
    return sweep;
}

TEST(SweepMetrics, ClusterMetricsAreByteIdenticalAcrossThreadCounts)
{
    auto serial = runClusterSweep(1);
    auto parallel = runClusterSweep(4);

    std::ostringstream cs, cp, ps, pp;
    serial.writeMetricsCsv(cs);
    parallel.writeMetricsCsv(cp);
    serial.writeMetricsProm(ps);
    parallel.writeMetricsProm(pp);
    EXPECT_FALSE(cs.str().empty());
    EXPECT_EQ(cs.str(), cp.str());
    EXPECT_EQ(ps.str(), pp.str());

    for (const char *needle :
         {"cluster.fabric.n0.tx_util", "cluster.n0.queue_len"}) {
        EXPECT_NE(cs.str().find(needle), std::string::npos)
            << "missing series " << needle;
    }
}

TEST(SweepMetrics, MetricsOffInstallsNoAmbientRecorder)
{
    runner::SweepRunner sweep("no_metrics");
    bool ran = false;
    sweep.add("pt", [&ran](json::Writer &w) {
        EXPECT_EQ(metrics::current(), nullptr);
        ran = true;
        w.kv("x", 1);
    });
    sweep.run(1);
    EXPECT_TRUE(ran);
}

// -------------------------------------------------------- golden CSV

/**
 * Pinned golden metrics CSV of a tiny fig10-style run. Regenerate
 * after a deliberate instrumentation/model change with:
 *
 *   CEREAL_UPDATE_GOLDEN=1 ./build/tests/test_metrics \
 *       --gtest_filter='GoldenMetrics.*'
 */
TEST(GoldenMetrics, SmallFig10RunMatchesPinnedCsv)
{
    runner::SweepRunner sweep("fig10_small");
    sweep.add("tree-narrow", [](json::Writer &w) {
        KlassRegistry reg;
        workloads::MicroWorkloads micro(reg);
        Heap src(reg, 0x1'0000'0000ULL);
        Addr root = micro.build(src, workloads::MicroBench::TreeNarrow,
                                1 << 16, 42);
        auto java = serde::makeSerializer("java", &reg);
        auto mj = workloads::measureSoftware(*java, src, root);
        auto mc = workloads::measureCereal(src, root);
        w.kv("java_ser_s", mj.serSeconds);
        w.kv("cereal_ser_s", mc.serSeconds);
    });
    sweep.enableMetrics();
    sweep.run(1);
    std::ostringstream ss;
    sweep.writeMetricsCsv(ss);
    const std::string doc = ss.str();

    const std::string path =
        std::string(CEREAL_GOLDEN_DIR) + "/metrics_fig10_small.csv";
    if (std::getenv("CEREAL_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (generate with CEREAL_UPDATE_GOLDEN=1)";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(doc, golden.str())
        << "metrics output drifted from the pinned golden CSV; if the "
           "change is deliberate, regenerate with CEREAL_UPDATE_GOLDEN=1";
}

/**
 * Pinned golden of the log-bucketed histogram export: a fixed latency
 * population snapshotted through recordHistogram() and rendered as the
 * Prometheus text exposition plus the JSON fragment. Regenerate after
 * a deliberate ladder/exporter change with:
 *
 *   CEREAL_UPDATE_GOLDEN=1 ./build/tests/test_metrics \
 *       --gtest_filter='GoldenMetrics.*'
 */
TEST(GoldenMetrics, HistogramExportMatchesPinnedGolden)
{
    stats::Distribution lat;
    // Deterministic spread: 1us..~0.8s across the log ladder.
    for (int i = 0; i < 64; ++i) {
        lat.sample(1e-6 * (1 << (i % 20)));
    }
    MetricsRecorder rec(1000);
    rec.recordHistogram("serving.latency_seconds",
                        "end-to-end request latency, log-bucketed",
                        lat);

    std::ostringstream doc;
    metrics::writeProm(doc, {{"golden-pt", &rec}});
    doc << "--- json ---\n";
    {
        json::Writer w(doc, 2);
        w.beginObject();
        rec.writeJson(w); // emits the "metrics" member
        w.endObject();
    }
    doc << "\n";

    const std::string path =
        std::string(CEREAL_GOLDEN_DIR) + "/metrics_histogram.txt";
    if (std::getenv("CEREAL_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc.str();
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (generate with CEREAL_UPDATE_GOLDEN=1)";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(doc.str(), golden.str())
        << "histogram export drifted from the pinned golden; if the "
           "change is deliberate, regenerate with CEREAL_UPDATE_GOLDEN=1";
}

} // namespace
} // namespace cereal
