/**
 * @file
 * Tests for the trace subsystem: sink/emitter semantics, the
 * zero-allocation null-sink guarantee, SpanScope, self-time
 * aggregation (the "phase spans tile the region" contract with
 * CoreModel), Chrome trace_event JSON validity, thread-count
 * determinism of sweep traces, and the pinned golden trace of a small
 * Figure-10-style run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "cpu/core_model.hh"
#include "fuzz/fuzzer.hh"
#include "mem/dram.hh"
#include "runner/sweep_runner.hh"
#include "serde/registry.hh"
#include "trace/chrome_trace.hh"
#include "trace/trace.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

// ------------------------------------------------- allocation counter
//
// Program-wide operator new replacement so the null-sink test can
// assert that disabled emitters never allocate. Counting is cheap and
// thread-safe, so replacing it for the whole test binary is harmless.

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace cereal {
namespace {

using trace::ChromeTraceSink;
using trace::TraceEmitter;
using trace::TraceEvent;

// ---------------------------------------------------------------- sink

TEST(TraceSink, TrackIdsAreStableAndSharedByName)
{
    ChromeTraceSink sink;
    EXPECT_EQ(sink.track("a"), 0u);
    EXPECT_EQ(sink.track("b"), 1u);
    EXPECT_EQ(sink.track("a"), 0u);
    ASSERT_EQ(sink.tracks().size(), 2u);
    EXPECT_EQ(sink.tracks()[0], "a");
    EXPECT_EQ(sink.tracks()[1], "b");
}

TEST(TraceSink, UniqueTrackSuffixesRepeatedNames)
{
    ChromeTraceSink sink;
    auto t0 = sink.uniqueTrack("core");
    auto t1 = sink.uniqueTrack("core");
    auto t2 = sink.uniqueTrack("core");
    EXPECT_NE(t0, t1);
    EXPECT_NE(t1, t2);
    EXPECT_EQ(sink.tracks()[t0], "core");
    EXPECT_EQ(sink.tracks()[t1], "core#1");
    EXPECT_EQ(sink.tracks()[t2], "core#2");
}

TEST(TraceSink, EventsKeepRecordedOrder)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("t"), "t");
    em.span("s", 10, 20);
    em.instant("i", 15);
    em.counter("c", 16, 3.0);
    ASSERT_EQ(sink.events().size(), 3u);
    EXPECT_EQ(sink.events()[0].kind, TraceEvent::Kind::Span);
    EXPECT_EQ(sink.events()[0].start, 10u);
    EXPECT_EQ(sink.events()[0].end, 20u);
    EXPECT_EQ(sink.events()[1].kind, TraceEvent::Kind::Instant);
    EXPECT_EQ(sink.events()[2].kind, TraceEvent::Kind::Counter);
    EXPECT_EQ(sink.events()[2].value, 3.0);
}

// ------------------------------------------------------------- emitter

TEST(TraceEmitter, SubComposesDottedUniqueTracks)
{
    ChromeTraceSink sink;
    trace::ScopedTrace scoped(sink);
    auto root = trace::current();
    ASSERT_TRUE(root.enabled());
    EXPECT_EQ(root.path(), "");

    auto a = root.sub("cereal");
    EXPECT_EQ(a.path(), "cereal");
    auto b = a.sub("su0");
    EXPECT_EQ(b.path(), "cereal.su0");
    // Same child name again -> fresh '#'-suffixed track, same path.
    auto b2 = a.sub("su0");
    EXPECT_EQ(sink.tracks()[sink.tracks().size() - 1], "cereal.su0#1");
    EXPECT_EQ(b2.path(), "cereal.su0");
}

TEST(TraceEmitter, DisabledEmitterPropagatesAndRecordsNothing)
{
    EXPECT_EQ(trace::currentSink(), nullptr);
    auto em = trace::current();
    EXPECT_FALSE(em.enabled());
    auto child = em.sub("x");
    EXPECT_FALSE(child.enabled());
    // No sink to observe; the contract is simply "no crash, no work".
    child.span("s", 0, 1);
    child.instant("i", 0);
    child.counter("c", 0, 1.0);
}

TEST(TraceEmitter, NullSinkPathPerformsZeroAllocations)
{
    TraceEmitter em; // disabled
    const auto before = g_allocCount.load();
    for (int i = 0; i < 1000; ++i) {
        auto child = em.sub("child_with_a_long_enough_name_to_allocate");
        child.span("span", 0, 100);
        child.instant("instant", 50);
        child.counter("counter", 60, 1.5);
        em.span("span2", 0, 1);
    }
    EXPECT_EQ(g_allocCount.load(), before);
}

// ----------------------------------------------------------- SpanScope

/** Manually advanced clock for SpanScope tests. */
struct FakeClock : trace::TraceClock
{
    Tick now = 0;
    mutable int reads = 0;
    Tick
    traceNow() const override
    {
        ++reads;
        return now;
    }
};

TEST(SpanScope, EmitsSpanFromConstructionToDestruction)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("t"), "t");
    FakeClock clock;
    clock.now = 5;
    {
        trace::SpanScope scope(em, "op", clock);
        clock.now = 42;
    }
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0].start, 5u);
    EXPECT_EQ(sink.events()[0].end, 42u);
    EXPECT_STREQ(sink.events()[0].name, "op");
}

TEST(SpanScope, ExplicitEndIsIdempotent)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("t"), "t");
    FakeClock clock;
    {
        trace::SpanScope scope(em, "op", clock);
        clock.now = 10;
        scope.end();
        clock.now = 99; // must not extend the span
        scope.end();
    }
    ASSERT_EQ(sink.events().size(), 1u);
    EXPECT_EQ(sink.events()[0].end, 10u);
}

TEST(SpanScope, DisabledEmitterNeverReadsTheClock)
{
    FakeClock clock;
    {
        trace::SpanScope scope(TraceEmitter(), "op", clock);
    }
    EXPECT_EQ(clock.reads, 0);
}

// ----------------------------------------------------------- selfTimes

TEST(SelfTimes, NestedSpansSubtractFromTheirParent)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("core"), "core");
    em.span("inner_a", 10, 30);
    em.span("inner_a", 30, 60);
    em.span("outer", 0, 100); // order of recording must not matter

    auto rows = trace::selfTimes(sink);
    ASSERT_EQ(rows.size(), 2u);
    // Rows appear in first-appearance order.
    EXPECT_EQ(rows[0].name, "inner_a");
    EXPECT_EQ(rows[0].count, 2u);
    EXPECT_EQ(rows[0].totalTicks, 50u);
    EXPECT_EQ(rows[0].selfTicks, 50u);
    EXPECT_EQ(rows[1].name, "outer");
    EXPECT_EQ(rows[1].totalTicks, 100u);
    EXPECT_EQ(rows[1].selfTicks, 50u);

    Tick sum = 0;
    for (const auto &r : rows) {
        sum += r.selfTicks;
    }
    EXPECT_EQ(sum, 100u);
}

TEST(SelfTimes, TracksAreIndependent)
{
    ChromeTraceSink sink;
    TraceEmitter a(&sink, sink.uniqueTrack("a"), "a");
    TraceEmitter b(&sink, sink.uniqueTrack("b"), "b");
    a.span("x", 0, 50);
    b.span("x", 10, 20); // overlaps a's span but on another track
    auto rows = trace::selfTimes(sink);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].track, "a");
    EXPECT_EQ(rows[0].selfTicks, 50u);
    EXPECT_EQ(rows[1].track, "b");
    EXPECT_EQ(rows[1].selfTicks, 10u);
}

/**
 * The CoreModel contract: phase spans (plus the stall spans nested
 * inside them) tile [setTrace, finish], so per-track self times sum
 * exactly to the region's elapsedTicks.
 */
TEST(SelfTimes, CoreModelPhaseSpansTileElapsedTicks)
{
    ChromeTraceSink sink;
    EventQueue eq;
    Dram dram("dram", eq);
    CoreModel core(dram);
    TraceEmitter em(&sink, sink.uniqueTrack("core"), "core");
    core.setTrace(em);

    core.compute(500);
    core.phase("walk");
    // Streaming loads over 1 MB: misses everywhere, fills the MLP
    // window, produces mlp_stall spans nested in the "walk" phase.
    for (Addr a = 0; a < (1u << 20); a += 64) {
        core.load(a, 64);
    }
    core.phase("copy");
    for (Addr a = (1u << 21); a < (1u << 21) + (1u << 18); a += 64) {
        core.store(a, 64);
    }
    core.phase("patch");
    // Pointer chases: dep_stall spans nested in the "patch" phase.
    for (Addr a = (1u << 22); a < (1u << 22) + (1u << 16); a += 4096) {
        core.loadDep(a, 16);
    }
    auto st = core.finish();
    ASSERT_GT(st.elapsedTicks, 0u);

    Tick sum = 0;
    bool sawStall = false;
    for (const auto &r : trace::selfTimes(sink)) {
        ASSERT_EQ(r.track, "core");
        sum += r.selfTicks;
        if (r.name == std::string("mlp_stall") ||
            r.name == std::string("dep_stall")) {
            sawStall = true;
        }
    }
    EXPECT_EQ(sum, st.elapsedTicks);
    EXPECT_TRUE(sawStall);
}

// --------------------------------------------------- Chrome JSON shape

/** Minimal JSON syntax checker (no semantics, just well-formedness). */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &doc) : s_(doc) {}

    bool
    valid()
    {
        skipWs();
        if (!value()) {
            return false;
        }
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0) {
            return false;
        }
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size()) {
                    return false;
                }
            }
            ++pos_;
        }
        if (pos_ >= s_.size()) {
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    value()
    {
        skipWs();
        if (pos_ >= s_.size()) {
            return false;
        }
        switch (s_[pos_]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':') {
                return false;
            }
            ++pos_;
            if (!value()) {
                return false;
            }
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != '}') {
            return false;
        }
        ++pos_;
        return true;
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value()) {
                return false;
            }
            skipWs();
            if (pos_ < s_.size() && s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            break;
        }
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != ']') {
            return false;
        }
        ++pos_;
        return true;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

TEST(ChromeTrace, DocumentIsWellFormedJsonWithExpectedEvents)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("core"), "core");
    em.span("op \"quoted\"", 0, 1'000'000); // 1 us
    em.instant("hit", 500);
    em.counter("queue", 600, 2.0);

    std::ostringstream ss;
    trace::writeChromeTrace(ss, {{"pt0", &sink}});
    const std::string doc = ss.str();

    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    // Process/thread metadata.
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
    // One of each event kind, with ticks rendered as microseconds.
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    // Counter names are qualified by their track.
    EXPECT_NE(doc.find("\"core.queue\""), std::string::npos);
    // Escaping survived.
    EXPECT_NE(doc.find("op \\\"quoted\\\""), std::string::npos);
}

TEST(ChromeTrace, SkipsNullSinksButKeepsPids)
{
    ChromeTraceSink sink;
    TraceEmitter em(&sink, sink.uniqueTrack("t"), "t");
    em.span("s", 0, 10);
    std::ostringstream ss;
    trace::writeChromeTrace(ss, {{"missing", nullptr}, {"pt", &sink}});
    const std::string doc = ss.str();
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    // The present point keeps its registration-slot pid (1).
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_EQ(doc.find("\"pid\":0"), std::string::npos);
}

// --------------------------------------------- instrumented components

/**
 * Fig10-style measurement under a trace: the software core's phase
 * self-times must sum to the measurement's reported serialize time
 * (the acceptance criterion for the instrumentation).
 */
TEST(HarnessTrace, SoftwareSelfTimesSumToReportedSeconds)
{
    ChromeTraceSink sink;
    KlassRegistry reg;
    workloads::MicroWorkloads micro(reg);
    Heap src(reg, 0x1'0000'0000ULL);
    Addr root =
        micro.build(src, workloads::MicroBench::TreeNarrow, 1 << 14, 42);
    auto ser = serde::makeSerializer("java", &reg);

    workloads::SdMeasurement m;
    {
        trace::ScopedTrace scoped(sink);
        m = workloads::measureSoftware(*ser, src, root);
    }

    Tick serSum = 0, deserSum = 0;
    for (const auto &r : trace::selfTimes(sink)) {
        if (r.track == "java.ser") {
            serSum += r.selfTicks;
        } else if (r.track == "java.deser") {
            deserSum += r.selfTicks;
        }
    }
    ASSERT_GT(serSum, 0u);
    ASSERT_GT(deserSum, 0u);
    EXPECT_DOUBLE_EQ(ticksToSeconds(serSum), m.serSeconds);
    EXPECT_DOUBLE_EQ(ticksToSeconds(deserSum), m.deserSeconds);
    // The serializers narrate named phases, not one opaque "run" span.
    bool sawNamedPhase = false;
    for (const auto &r : trace::selfTimes(sink)) {
        if (r.track == "java.ser" && r.name != std::string("run")) {
            sawNamedPhase = true;
        }
    }
    EXPECT_TRUE(sawNamedPhase);
}

TEST(HarnessTrace, CerealMeasurementEmitsAccelTracks)
{
    ChromeTraceSink sink;
    KlassRegistry reg;
    workloads::MicroWorkloads micro(reg);
    Heap src(reg, 0x1'0000'0000ULL);
    Addr root =
        micro.build(src, workloads::MicroBench::ListSmall, 1 << 14, 42);

    {
        trace::ScopedTrace scoped(sink);
        workloads::measureCereal(src, root);
    }

    bool sawSu = false, sawDram = false, sawMai = false;
    for (const auto &name : sink.tracks()) {
        if (name.find("cereal.su0") == 0) {
            sawSu = true;
        }
        if (name.find("cereal.ser_dram") == 0) {
            sawDram = true;
        }
    }
    for (const auto &ev : sink.events()) {
        if (ev.kind == TraceEvent::Kind::Instant &&
            (ev.name == std::string("mai_hit") ||
             ev.name == std::string("mai_miss"))) {
            sawMai = true;
        }
    }
    EXPECT_TRUE(sawSu);
    EXPECT_TRUE(sawDram);
    EXPECT_TRUE(sawMai);
}

TEST(FuzzerTrace, ReplayEmitsPerFormatInstants)
{
    ChromeTraceSink sink;
    FuzzStats stats;
    {
        trace::ScopedTrace scoped(sink);
        DecoderFuzzer fuzzer;
        stats = fuzzer.replayCorpus();
    }
    EXPECT_TRUE(stats.findings.empty());
    ASSERT_GT(stats.decodeOk, 0u);

    std::uint64_t okInstants = 0;
    for (const auto &ev : sink.events()) {
        if (ev.kind == TraceEvent::Kind::Instant &&
            ev.name == std::string("decode_ok")) {
            ++okInstants;
        }
    }
    EXPECT_EQ(okInstants, stats.decodeOk);
    bool sawJavaTrack = false;
    for (const auto &name : sink.tracks()) {
        if (name == "fuzz.java") {
            sawJavaTrack = true;
        }
    }
    EXPECT_TRUE(sawJavaTrack);
}

// ------------------------------------------------- sweep determinism

/** A small two-point traced sweep exercising software + accel paths. */
std::string
renderTracedSweep(unsigned threads)
{
    runner::SweepRunner sweep("trace_unit");
    for (auto mb : {workloads::MicroBench::TreeNarrow,
                    workloads::MicroBench::ListSmall}) {
        sweep.add(workloads::microBenchName(mb), [mb](json::Writer &w) {
            KlassRegistry reg;
            workloads::MicroWorkloads micro(reg);
            Heap src(reg, 0x1'0000'0000ULL);
            Addr root = micro.build(src, mb, 1 << 15, 42);
            auto ser = serde::makeSerializer("kryo", &reg);
            auto ms = workloads::measureSoftware(*ser, src, root);
            auto mc = workloads::measureCereal(src, root);
            w.kv("sw_ser_s", ms.serSeconds);
            w.kv("accel_ser_s", mc.serSeconds);
        });
    }
    sweep.enableTrace();
    sweep.run(threads);
    std::ostringstream ss;
    sweep.writeTrace(ss);
    return ss.str();
}

TEST(SweepTrace, TraceBytesAreIdenticalAcrossThreadCounts)
{
    const std::string serial = renderTracedSweep(1);
    const std::string parallel = renderTracedSweep(4);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_TRUE(JsonChecker(serial).valid());
}

TEST(SweepTrace, UntracedRunInstallsNoAmbientSink)
{
    runner::SweepRunner sweep("untraced");
    bool pointRan = false;
    sweep.add("pt", [&pointRan](json::Writer &w) {
        // Ambient root must be disabled when enableTrace() was not
        // called: instrumented components do no trace work.
        EXPECT_EQ(trace::currentSink(), nullptr);
        pointRan = true;
        w.kv("x", 1);
    });
    sweep.run(1);
    EXPECT_TRUE(pointRan);
}

// -------------------------------------------------------- golden trace

/**
 * Pinned golden trace of a tiny fig10-style run. Regenerate after a
 * deliberate instrumentation/model change with:
 *
 *   CEREAL_UPDATE_GOLDEN=1 ./build/tests/test_trace \
 *       --gtest_filter='GoldenTrace.*'
 */
TEST(GoldenTrace, SmallFig10RunMatchesPinnedDocument)
{
    runner::SweepRunner sweep("fig10_small");
    sweep.add("tree-narrow", [](json::Writer &w) {
        KlassRegistry reg;
        workloads::MicroWorkloads micro(reg);
        Heap src(reg, 0x1'0000'0000ULL);
        Addr root = micro.build(src, workloads::MicroBench::TreeNarrow,
                                1 << 16, 42);
        auto java = serde::makeSerializer("java", &reg);
        auto mj = workloads::measureSoftware(*java, src, root);
        auto mc = workloads::measureCereal(src, root);
        w.kv("java_ser_s", mj.serSeconds);
        w.kv("cereal_ser_s", mc.serSeconds);
    });
    sweep.enableTrace();
    sweep.run(1);
    std::ostringstream ss;
    sweep.writeTrace(ss);
    const std::string doc = ss.str();
    ASSERT_TRUE(JsonChecker(doc).valid());

    const std::string path =
        std::string(CEREAL_GOLDEN_DIR) + "/trace_fig10_small.json";
    if (std::getenv("CEREAL_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << doc;
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (generate with CEREAL_UPDATE_GOLDEN=1)";
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(doc, golden.str())
        << "trace output drifted from the pinned golden document; if "
           "the change is deliberate, regenerate with "
           "CEREAL_UPDATE_GOLDEN=1";
}

} // namespace
} // namespace cereal
