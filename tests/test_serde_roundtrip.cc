/**
 * @file
 * Integration + property tests: every serializer must round-trip every
 * workload shape into an isomorphic object graph in a fresh heap.
 *
 * Parameterised over (serializer, workload) pairs; this is the central
 * functional-correctness oracle for the serialization formats.
 */

#include <gtest/gtest.h>

#include <memory>

#include "heap/object.hh"
#include "heap/walker.hh"
#include "serde/registry.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using workloads::MicroBench;
using workloads::MicroWorkloads;

/** Builds a serializer by name with all classes registered. */
std::unique_ptr<Serializer>
makeSerializer(const std::string &which, const KlassRegistry &reg)
{
    return serde::makeSerializer(which, &reg);
}

class RoundTrip : public ::testing::TestWithParam<
                      std::tuple<std::string, MicroBench>>
{
  protected:
    RoundTrip() : micro(reg), src(reg), dst(reg, 0x9'0000'0000ULL) {}

    void
    roundTripAndCheck(Addr root)
    {
        auto ser = makeSerializer(std::get<0>(GetParam()), reg);
        ASSERT_NE(ser, nullptr);
        auto stream = ser->serialize(src, root);
        ASSERT_FALSE(stream.empty());
        Addr new_root = ser->deserialize(stream, dst);
        std::string why;
        EXPECT_TRUE(graphEquals(src, root, dst, new_root, &why)) << why;
    }

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap src, dst;
};

TEST_P(RoundTrip, MicrobenchGraphIsIsomorphic)
{
    // Scale paper sizes down ~1000x: shapes preserved, runtimes in ms.
    Addr root = micro.build(src, std::get<1>(GetParam()),
                            /*scale_div=*/1024, /*seed=*/42);
    roundTripAndCheck(root);
}

INSTANTIATE_TEST_SUITE_P(
    AllSerializersAllShapes, RoundTrip,
    ::testing::Combine(
        ::testing::Values("java", "kryo", "skyway", "cereal",
                          "plaincode", "hps"),
        ::testing::Values(MicroBench::TreeNarrow, MicroBench::TreeWide,
                          MicroBench::ListSmall, MicroBench::ListLarge,
                          MicroBench::GraphSparse, MicroBench::GraphDense)),
    [](const auto &info) {
        return std::get<0>(info.param) + std::string("_") +
               [&] {
                   std::string n =
                       workloads::microBenchName(std::get<1>(info.param));
                   for (auto &c : n) {
                       if (c == '-') {
                           c = '_';
                       }
                   }
                   return n;
               }();
    });

/** Serializer-parameterised edge-case tests. */
class EdgeCases : public ::testing::TestWithParam<std::string>
{
  protected:
    EdgeCases() : src(reg), dst(reg, 0x9'0000'0000ULL)
    {
        single = reg.add("Single", {{"v", FieldType::Long}});
        mixed = reg.add("Mixed", {{"b", FieldType::Byte},
                                  {"c", FieldType::Char},
                                  {"s", FieldType::Short},
                                  {"i", FieldType::Int},
                                  {"j", FieldType::Long},
                                  {"f", FieldType::Float},
                                  {"d", FieldType::Double},
                                  {"ref", FieldType::Reference}});
        holder = reg.add("Holder", {{"a", FieldType::Reference},
                                    {"b", FieldType::Reference}});
        // Pre-create array klasses so both sides agree.
        for (auto t : {FieldType::Boolean, FieldType::Byte, FieldType::Char,
                       FieldType::Short, FieldType::Int, FieldType::Long,
                       FieldType::Float, FieldType::Double,
                       FieldType::Reference}) {
            reg.arrayKlass(t);
        }
    }

    Addr
    check(Addr root)
    {
        auto ser = makeSerializer(GetParam(), reg);
        auto stream = ser->serialize(src, root);
        Addr new_root = ser->deserialize(stream, dst);
        std::string why;
        EXPECT_TRUE(graphEquals(src, root, dst, new_root, &why)) << why;
        return new_root;
    }

    KlassRegistry reg;
    Heap src, dst;
    KlassId single, mixed, holder;
};

TEST_P(EdgeCases, SingleObject)
{
    Addr o = src.allocateInstance(single);
    ObjectView(src, o).setLong(0, 0x0123456789abcdefLL);
    check(o);
}

TEST_P(EdgeCases, AllPrimitiveTypesPreserved)
{
    Addr o = src.allocateInstance(mixed);
    ObjectView v(src, o);
    v.setRaw(0, 0xff);
    v.setRaw(1, 0xbeef);
    v.setRaw(2, 0x7fff);
    v.setInt(3, -2000000000);
    v.setLong(4, -9000000000000000000LL);
    v.setRaw(5, 0x3f800000); // 1.0f bit pattern
    v.setDouble(6, -1.5e300);
    v.setRef(7, 0);
    check(o);
}

TEST_P(EdgeCases, NullReferencesSurvive)
{
    Addr o = src.allocateInstance(holder);
    check(o); // both refs null
}

TEST_P(EdgeCases, SharedObjectSerializedOnce)
{
    Addr leaf = src.allocateInstance(single);
    ObjectView(src, leaf).setLong(0, 777);
    Addr o = src.allocateInstance(holder);
    ObjectView(src, o).setRef(0, leaf);
    ObjectView(src, o).setRef(1, leaf);
    Addr nr = check(o);
    // Sharing must be preserved, not duplicated.
    ObjectView nv(dst, nr);
    EXPECT_EQ(nv.getRef(0), nv.getRef(1));
}

TEST_P(EdgeCases, SelfReferenceCycle)
{
    Addr o = src.allocateInstance(holder);
    ObjectView(src, o).setRef(0, o);
    Addr nr = check(o);
    EXPECT_EQ(ObjectView(dst, nr).getRef(0), nr);
}

TEST_P(EdgeCases, MutualCycle)
{
    Addr a = src.allocateInstance(holder);
    Addr b = src.allocateInstance(holder);
    ObjectView(src, a).setRef(0, b);
    ObjectView(src, b).setRef(0, a);
    check(a);
}

TEST_P(EdgeCases, EmptyArray)
{
    Addr arr = src.allocateArray(FieldType::Int, 0);
    check(arr);
}

TEST_P(EdgeCases, PrimitiveArraysOfEveryType)
{
    for (auto t : {FieldType::Boolean, FieldType::Byte, FieldType::Char,
                   FieldType::Short, FieldType::Int, FieldType::Long,
                   FieldType::Float, FieldType::Double}) {
        Heap s2(reg, 0x40'0000'0000ULL + 0x1'0000'0000ULL *
                                             static_cast<Addr>(t));
        Heap d2(reg, 0x60'0000'0000ULL + 0x1'0000'0000ULL *
                                             static_cast<Addr>(t));
        Addr arr = s2.allocateArray(t, 13);
        ObjectView v(s2, arr);
        for (std::uint64_t i = 0; i < 13; ++i) {
            v.setElem(i, (i * 37 + 11) & ((1ULL << (fieldTypeBytes(t) * 8 -
                                                    1)) |
                                          ((1ULL << (fieldTypeBytes(t) * 8 -
                                                     1)) -
                                           1)));
        }
        auto ser = makeSerializer(GetParam(), reg);
        auto stream = ser->serialize(s2, arr);
        Addr nr = ser->deserialize(stream, d2);
        std::string why;
        EXPECT_TRUE(graphEquals(s2, arr, d2, nr, &why))
            << fieldTypeName(t) << ": " << why;
    }
}

TEST_P(EdgeCases, NestedReferenceArrays)
{
    Addr inner1 = src.allocateArray(FieldType::Reference, 2);
    Addr inner2 = src.allocateArray(FieldType::Reference, 2);
    Addr leaf = src.allocateInstance(single);
    ObjectView(src, leaf).setLong(0, 5);
    ObjectView(src, inner1).setRefElem(0, leaf);
    ObjectView(src, inner1).setRefElem(1, inner2);
    ObjectView(src, inner2).setRefElem(0, inner1); // cycle through arrays
    Addr outer = src.allocateArray(FieldType::Reference, 3);
    ObjectView(src, outer).setRefElem(0, inner1);
    ObjectView(src, outer).setRefElem(1, inner2);
    ObjectView(src, outer).setRefElem(2, 0); // null element
    check(outer);
}

TEST_P(EdgeCases, RepeatedSerializationsIndependent)
{
    Addr o = src.allocateInstance(single);
    ObjectView(src, o).setLong(0, 31337);
    auto ser = makeSerializer(GetParam(), reg);
    auto s1 = ser->serialize(src, o);
    auto s2 = ser->serialize(src, o);
    EXPECT_EQ(s1, s2);
    Addr r1 = ser->deserialize(s1, dst);
    Addr r2 = ser->deserialize(s2, dst);
    EXPECT_NE(r1, r2);
    EXPECT_TRUE(graphEquals(dst, r1, dst, r2));
}

TEST_P(EdgeCases, SinkCountsTrafficConsistently)
{
    if (GetParam() == "cereal") {
        // The functional cereal serializer produces the accelerator's
        // packed bytes but does not narrate software traffic: its cost
        // model lives in the accelerator pipeline (src/accel), not in
        // a MemSink. Nothing to count here.
        GTEST_SKIP();
    }
    Rng rng(3);
    MicroWorkloads micro(reg);
    Addr root = micro.buildList(src, 200, rng);
    auto ser = makeSerializer(GetParam(), reg);
    CountingSink ser_sink;
    auto stream = ser->serialize(src, root, &ser_sink);
    EXPECT_GT(ser_sink.loads, 0u);
    EXPECT_GT(ser_sink.storeBytes, 0u);
    // The serialized stream itself was narrated as stores.
    EXPECT_GE(ser_sink.storeBytes, stream.size());

    CountingSink de_sink;
    ser->deserialize(stream, dst, &de_sink);
    if (GetParam() == "hps") {
        // Zero-copy receive: only the structural words (segment
        // prefixes, type ids, reference tokens) are touched during the
        // validation pass; field payload stays untouched in the wire
        // buffer, so the narrated traffic is strictly less than the
        // stream and no heap stores appear.
        EXPECT_GT(de_sink.loadBytes, 0u);
        EXPECT_LT(de_sink.loadBytes, stream.size());
        EXPECT_GT(de_sink.computeOps, 0u);
        return;
    }
    EXPECT_GT(de_sink.loadBytes + 0, stream.size() - 1);
    EXPECT_GT(de_sink.stores, 0u);
    EXPECT_GT(de_sink.computeOps, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSerializers, EdgeCases,
                         ::testing::Values("java", "kryo", "skyway",
                                           "cereal", "plaincode", "hps"),
                         [](const auto &info) { return info.param; });

} // namespace
} // namespace cereal
