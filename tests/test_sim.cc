/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, clock
 * domains, deterministic RNG, and the stats package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace cereal {
namespace {

TEST(EventQueue, FiresInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
    EXPECT_EQ(eq.executedCount(), 3u);
}

TEST(EventQueue, TiesBreakInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        eq.schedule(100, [&order, i] { order.push_back(i); });
    }
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, SameTickEventsScheduledFromCallbacksKeepFifoOrder)
{
    // The cluster simulator relies on this: a callback that schedules
    // more work *at the current tick* must run it after everything
    // already queued for that tick, in scheduling order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] {
        order.push_back(0);
        eq.schedule(50, [&] { order.push_back(3); });
        eq.schedule(50, [&] { order.push_back(4); });
    });
    eq.schedule(50, [&] { order.push_back(1); });
    eq.schedule(50, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAndScheduleInInterleaveDeterministically)
{
    // schedule(now + d) and scheduleIn(d) land in the same FIFO class
    // when they resolve to the same tick: sequence numbers are handed
    // out per call, regardless of entry point.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        eq.scheduleIn(7, [&] { order.push_back(0); });
        eq.schedule(17, [&] { order.push_back(1); });
        eq.scheduleIn(7, [&] { order.push_back(2); });
        eq.schedule(17, [&] { order.push_back(3); });
    });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 17u);
}

TEST(EventQueue, IdenticalRunsExecuteIdentically)
{
    // Two queues fed the same schedule drain in the same order — the
    // reproducibility property multi-node cluster runs depend on.
    auto drive = [] {
        EventQueue eq;
        std::vector<int> order;
        for (int i = 0; i < 32; ++i) {
            eq.schedule(static_cast<Tick>((i * 7) % 5),
                        [&order, i] { order.push_back(i); });
        }
        eq.runAll();
        return order;
    };
    EXPECT_EQ(drive(), drive());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) {
            eq.scheduleIn(5, chain);
        }
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runAll();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilExecutesReentrantWorkAtTheBoundary)
{
    // An event exactly at `until` runs, and same-tick work it
    // schedules runs too — the boundary is inclusive all the way to
    // quiescence at that tick.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(20, [&] {
        order.push_back(0);
        eq.schedule(20, [&] { order.push_back(1); });
        eq.schedule(21, [&] { order.push_back(2); });
    });
    eq.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, ReentrantSchedulingAtNowExecutesThisRun)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        eq.schedule(eq.now(), [&] { ++fired; });
        eq.scheduleIn(0, [&] { ++fired; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, NextEventTickAfterDrainIsMaxTick)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventTick(), kMaxTick);
    eq.schedule(5, [] {});
    EXPECT_EQ(eq.nextEventTick(), 5u);
    eq.runAll();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextEventTick(), kMaxTick);
}

TEST(EventQueue, FastForwardSkipsIdleTimeWithoutExecuting)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1000, [&] { ++fired; });
    EXPECT_EQ(eq.fastForward(900), 900u);
    EXPECT_EQ(eq.now(), 900u);
    EXPECT_EQ(fired, 0);
    // Jumping exactly onto the next event's tick is allowed; the
    // event still executes normally afterwards.
    EXPECT_EQ(eq.fastForward(1000), 1000u);
    EXPECT_EQ(fired, 0);
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.executedCount(), 1u);
}

TEST(EventQueue, FastForwardBackwardsIsANoOp)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.fastForward(5), 10u);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, FastForwardOverPendingEventPanics)
{
    EventQueue eq;
    eq.schedule(1000, [] {});
    EXPECT_DEATH(eq.fastForward(1001), "skip a pending event");
}

TEST(EventCallback, SmallCallablesStayInline)
{
    int hits = 0;
    EventQueue::Callback cb([&hits] { ++hits; });
    EXPECT_TRUE(cb.isInline());
    cb();
    EXPECT_EQ(hits, 1);
}

TEST(EventCallback, LargeCallablesFallBackToTheHeap)
{
    struct Big
    {
        char pad[EventQueue::Callback::kInlineBytes + 8] = {};
        int *out;
        void operator()() { *out = 42; }
    };
    int result = 0;
    Big big;
    big.out = &result;
    EventQueue::Callback cb(big);
    EXPECT_FALSE(cb.isInline());
    cb();
    EXPECT_EQ(result, 42);
}

TEST(EventCallback, MoveTransfersTheCallable)
{
    int hits = 0;
    EventQueue::Callback a([&hits] { ++hits; });
    EventQueue::Callback b(std::move(a));
    b();
    EXPECT_EQ(hits, 1);
    EXPECT_DEATH(a(), "empty EventCallback");

    EventQueue::Callback c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(ClockDomain, Conversions)
{
    // 1 GHz -> 1000 ps period.
    ClockDomain cd(1000);
    EXPECT_EQ(cd.cyclesToTicks(5), 5000u);
    EXPECT_EQ(cd.ticksToCycles(5000), 5u);
    EXPECT_EQ(cd.ticksToCycles(5001), 6u);
    EXPECT_EQ(cd.clockEdge(999), 1000u);
    EXPECT_EQ(cd.clockEdge(1000), 1000u);
}

TEST(Types, PeriodFromMHz)
{
    // 3600 MHz -> ~277 ps.
    Tick p = periodFromMHz(3600);
    EXPECT_NEAR(static_cast<double>(p), 277.8, 1.0);
    EXPECT_EQ(nsToTicks(40), 40000u);
}

TEST(Types, Rounding)
{
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(roundDown(13, 8), 8u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(floorLog2(64), 6u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.below(17), 17u);
    }
    EXPECT_EQ(r.below(1), 0u);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng r(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Stats, ScalarArithmetic)
{
    stats::Scalar s;
    s += 5;
    ++s;
    s -= 2;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    stats::Average a;
    a.sample(10);
    a.sample(20);
    a.sample(30);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_DOUBLE_EQ(a.min(), 10.0);
    EXPECT_DOUBLE_EQ(a.max(), 30.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, AverageResetClearsMinMaxExtremes)
{
    // Regression: reset() once left the old min/max behind, so samples
    // after a reset could never narrow the reported range.
    stats::Average a;
    a.sample(1);
    a.sample(1000);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    a.sample(50);
    a.sample(60);
    EXPECT_DOUBLE_EQ(a.min(), 50.0);
    EXPECT_DOUBLE_EQ(a.max(), 60.0);
    EXPECT_DOUBLE_EQ(a.mean(), 55.0);
}

TEST(Stats, GroupRejectsDuplicateStatNames)
{
    stats::StatGroup g("dev");
    stats::Scalar a, b;
    g.add("reads", "first registration", a);
    EXPECT_DEATH(g.add("reads", "silently shadowing", b),
                 "already has a stat named 'reads'");
}

TEST(Stats, GroupFindResolvesByName)
{
    stats::StatGroup g("dev");
    stats::Scalar reads;
    stats::Average lat;
    g.add("reads", "read count", reads);
    g.add("lat", "latency", lat);

    const stats::Entry *e = g.find("reads");
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->kind, stats::Kind::Scalar);
    EXPECT_EQ(e->stat, &reads);
    ASSERT_NE(g.find("lat"), nullptr);
    EXPECT_EQ(g.find("lat")->kind, stats::Kind::Average);
    EXPECT_EQ(g.find("writes"), nullptr);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    stats::Histogram h(4, 10.0);
    h.sample(5);
    h.sample(15);
    h.sample(15);
    h.sample(39);
    h.sample(100);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Stats, DistributionExactPercentiles)
{
    stats::Distribution d;
    for (int v = 100; v >= 1; --v) {
        d.sample(v); // reverse order: percentile() must sort
    }
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    // Nearest rank over 1..100: pXX is exactly XX.
    EXPECT_DOUBLE_EQ(d.p50(), 50.0);
    EXPECT_DOUBLE_EQ(d.p95(), 95.0);
    EXPECT_DOUBLE_EQ(d.p99(), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
}

TEST(Stats, DistributionResortsAfterNewSamples)
{
    stats::Distribution d;
    d.sample(10);
    d.sample(20);
    EXPECT_DOUBLE_EQ(d.p50(), 10.0); // rank 1 of 2
    d.sample(1); // invalidates the cached sort
    EXPECT_DOUBLE_EQ(d.p50(), 10.0); // rank 2 of 3
    EXPECT_DOUBLE_EQ(d.p99(), 20.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.p99(), 0.0);
}

TEST(Stats, DistributionSingleSample)
{
    stats::Distribution d;
    d.sample(7.5);
    EXPECT_DOUBLE_EQ(d.p50(), 7.5);
    EXPECT_DOUBLE_EQ(d.p95(), 7.5);
    EXPECT_DOUBLE_EQ(d.p99(), 7.5);
}

TEST(Stats, DistributionLargeNNearestRank)
{
    // 100001 values inserted in reverse; nearest-rank is
    // ceil(p/100 * n), 1-indexed into the sorted samples.
    stats::Distribution d;
    d.reserve(100001);
    for (int v = 100000; v >= 0; --v) {
        d.sample(v);
    }
    EXPECT_EQ(d.count(), 100001u);
    EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
    EXPECT_DOUBLE_EQ(d.p50(), 50000.0);  // ceil(50000.5) = 50001st
    EXPECT_DOUBLE_EQ(d.p95(), 95000.0);  // ceil(95000.95) = 95001st
    EXPECT_DOUBLE_EQ(d.p99(), 99000.0);  // ceil(99000.99) = 99001st
    EXPECT_DOUBLE_EQ(d.p999(), 99900.0); // ceil(99900.999) = 99901st
    EXPECT_DOUBLE_EQ(d.percentile(100), 100000.0);
}

TEST(Stats, DistributionQuantileMatchesPercentile)
{
    stats::Distribution d;
    d.reserve(10000);
    for (int v = 10000; v >= 1; --v) {
        d.sample(v);
    }
    // quantile(q) is the primitive; percentile(p) is quantile(p/100).
    EXPECT_DOUBLE_EQ(d.quantile(0.5), d.percentile(50));
    EXPECT_DOUBLE_EQ(d.quantile(0.999), d.percentile(99.9));
    EXPECT_DOUBLE_EQ(d.quantile(0.999), 9990.0);
    EXPECT_DOUBLE_EQ(d.quantile(0.9999), 9999.0);
    // Extreme quantiles clamp to the order statistics.
    EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.quantile(1.0), 10000.0);
    // Below one sample's worth of mass, nearest rank is the minimum.
    EXPECT_DOUBLE_EQ(d.quantile(1e-9), 1.0);
}

TEST(Stats, DistributionP999NeedsAThousandSamplesToResolve)
{
    // With n < 1000 the 0.999 rank rounds up to the max sample;
    // crossing n = 1000 separates the two.
    stats::Distribution d;
    for (int v = 1; v <= 999; ++v) {
        d.sample(v);
    }
    EXPECT_DOUBLE_EQ(d.p999(), 999.0); // == max
    d.sample(1000);
    EXPECT_DOUBLE_EQ(d.p999(), 999.0); // now one below max
    EXPECT_DOUBLE_EQ(d.max(), 1000.0);
}

TEST(Stats, DistributionInGroupDump)
{
    stats::StatGroup g("net");
    stats::Distribution lat;
    lat.sample(1);
    lat.sample(2);
    lat.sample(3);
    g.add("latency", "request latency", lat);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("net.latency"), std::string::npos);
    EXPECT_NE(os.str().find("p99="), std::string::npos);

    std::ostringstream js;
    json::Writer w(js, 0);
    w.beginObject();
    g.dumpJson(w);
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_NE(js.str().find("\"kind\":\"distribution\""),
              std::string::npos);
    EXPECT_NE(js.str().find("\"p95\":"), std::string::npos);
    EXPECT_NE(js.str().find("\"p999\":"), std::string::npos);
}

TEST(Stats, GroupDumpContainsNames)
{
    stats::StatGroup g("dram");
    stats::Scalar reads;
    reads += 3;
    g.add("reads", "read count", reads);
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("dram.reads"), std::string::npos);
    EXPECT_NE(os.str().find("read count"), std::string::npos);
}

} // namespace
} // namespace cereal
