/**
 * @file
 * Tests for the serving front-end subsystem: load-shape evaluation and
 * generator determinism, admission-queue bound/shed/reject policies,
 * credit conservation and the no-unbounded-queue invariant under
 * deliberate incast, flash-crowd recovery, and the hps operator-side
 * zero-copy property (narrated receive+consume traffic smaller than
 * the stream it reads).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/flow_control.hh"
#include "cluster/serving.hh"
#include "heap/heap.hh"
#include "load/load_gen.hh"
#include "load/load_shape.hh"
#include "serde/hps_serde.hh"
#include "serde/sink.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace {

using cluster::AdmissionPolicy;
using cluster::Backend;
using cluster::ClusterConfig;
using cluster::ClusterSim;
using cluster::CreditManager;
using cluster::FlowControlConfig;
using cluster::ServingConfig;
using cluster::runServingFrontend;

ClusterConfig
tinyCluster(Backend b)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.backend = b;
    cfg.scale = 1 << 20;
    return cfg;
}

// ---------------------------------------------------------------------
// Load shapes and the generator
// ---------------------------------------------------------------------

TEST(LoadShape, FactorsStayInsideTheEnvelope)
{
    auto shape = load::LoadShape::diurnal(0.5)
                     .with(load::LoadShape::bursty(3.0, 0.25))
                     .with(load::LoadShape::flashCrowd(4.0, 0.5, 0.1));
    EXPECT_DOUBLE_EQ(shape.maxFactor(), 1.5 * 3.0 * 4.0);
    EXPECT_EQ(shape.describe(), "diurnal+bursty+flash");
    ASSERT_NE(shape.flashComponent(), nullptr);

    load::ShapeEvaluator eval(shape, 100.0, 7);
    for (int i = 0; i <= 1000; ++i) {
        const double f = eval.factor(0.1 * i);
        EXPECT_GE(f, 0.0);
        EXPECT_LE(f, shape.maxFactor() + 1e-12);
    }
}

TEST(LoadShape, FlashCrowdRaisesTheWindowOnly)
{
    auto shape = load::LoadShape::flashCrowd(5.0, 0.4, 0.2);
    load::ShapeEvaluator eval(shape, 10.0, 1);
    EXPECT_DOUBLE_EQ(eval.factor(1.0), 1.0);
    EXPECT_DOUBLE_EQ(eval.factor(4.5), 5.0);
    EXPECT_DOUBLE_EQ(eval.factor(6.5), 1.0);
}

TEST(LoadGen, StreamsAreDeterministicAndSorted)
{
    load::LoadGenConfig cfg;
    cfg.nodes = 4;
    cfg.lambdaBase = 100.0;
    cfg.requestsPerNode = 500;
    cfg.shape = load::LoadShape::diurnal(0.4).with(
        load::LoadShape::bursty(2.0, 0.5));
    cfg.seed = 3;
    load::LoadGenerator gen(cfg);

    const auto a = gen.arrivalsFor(1);
    const auto b = gen.arrivalsFor(1);
    ASSERT_EQ(a.size(), cfg.requestsPerNode);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].t, b[i].t);
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_EQ(a[i].client, b[i].client);
        EXPECT_EQ(a[i].cls, b[i].cls);
        if (i > 0) {
            EXPECT_GT(a[i].t, a[i - 1].t);
        }
        EXPECT_NE(a[i].dst, 1u);
        EXPECT_LT(a[i].dst, cfg.nodes);
    }
    // Distinct origins draw distinct streams.
    const auto c = gen.arrivalsFor(2);
    EXPECT_NE(a.front().t, c.front().t);
}

TEST(LoadGen, ClassMixFollowsTheDecileSplit)
{
    load::LoadGenConfig cfg;
    cfg.nodes = 2;
    cfg.lambdaBase = 50.0;
    cfg.requestsPerNode = 4000;
    cfg.seed = 11;
    load::LoadGenerator gen(cfg);
    std::uint64_t byClass[load::kRequestClasses] = {0, 0, 0};
    for (const auto &a : gen.arrivalsFor(0)) {
        ASSERT_LT(a.cls, load::kRequestClasses);
        ++byClass[a.cls];
    }
    const double n = 4000.0;
    EXPECT_NEAR(byClass[0] / n, 0.10, 0.03);
    EXPECT_NEAR(byClass[1] / n, 0.60, 0.04);
    EXPECT_NEAR(byClass[2] / n, 0.30, 0.04);
}

// ---------------------------------------------------------------------
// Credit manager
// ---------------------------------------------------------------------

TEST(CreditManagerTest, WindowBoundsAndConservation)
{
    FlowControlConfig fc;
    fc.window = 2;
    CreditManager cm(3, fc);
    EXPECT_TRUE(cm.tryConsume(0, 1));
    EXPECT_TRUE(cm.tryConsume(0, 1));
    EXPECT_FALSE(cm.tryConsume(0, 1));
    // Other pairs are unaffected.
    EXPECT_TRUE(cm.tryConsume(0, 2));
    EXPECT_FALSE(cm.allWindowsFull());
    cm.refund(0, 1);
    EXPECT_TRUE(cm.tryConsume(0, 1));
    cm.refund(0, 1);
    cm.refund(0, 1);
    cm.refund(0, 2);
    EXPECT_TRUE(cm.allWindowsFull());
    EXPECT_EQ(cm.issued(), 4u);
    EXPECT_EQ(cm.returned(), 4u);
}

TEST(CreditManagerTest, DisabledNeverStalls)
{
    FlowControlConfig fc;
    fc.enabled = false;
    CreditManager cm(2, fc);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(cm.tryConsume(0, 1));
    }
    EXPECT_EQ(cm.issued(), 0u);
    EXPECT_TRUE(cm.allWindowsFull());
}

// ---------------------------------------------------------------------
// The serving front end
// ---------------------------------------------------------------------

ServingConfig
controlledConfig(double utilization)
{
    ServingConfig cfg;
    cfg.utilization = utilization;
    cfg.requestsPerNode = 120;
    cfg.admission.policy = AdmissionPolicy::Drop;
    cfg.admission.queueBound = 16;
    cfg.flow.enabled = true;
    cfg.flow.window = 4;
    return cfg;
}

TEST(ServingFrontend, RunsAreDeterministic)
{
    ClusterSim sim(tinyCluster(Backend::Kryo));
    ServingConfig cfg = controlledConfig(1.2);
    cfg.shape = load::LoadShape::bursty(2.0, 0.5);
    const auto a = runServingFrontend(sim, cfg);
    const auto b = runServingFrontend(sim, cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.creditsIssued, b.creditsIssued);
    EXPECT_DOUBLE_EQ(a.latency.p99, b.latency.p99);
    EXPECT_DOUBLE_EQ(a.durationSeconds, b.durationSeconds);
}

TEST(ServingFrontend, OpenLoopAdmitsEverything)
{
    ClusterSim sim(tinyCluster(Backend::Plaincode));
    ServingConfig cfg;
    cfg.utilization = 1.5;
    cfg.requestsPerNode = 100;
    cfg.admission.policy = AdmissionPolicy::None;
    cfg.flow.enabled = false;
    const auto r = runServingFrontend(sim, cfg);
    EXPECT_EQ(r.admitted, r.requests);
    EXPECT_EQ(r.completed, r.requests);
    EXPECT_EQ(r.dropped, 0u);
    EXPECT_EQ(r.creditsIssued, 0u);
    EXPECT_TRUE(r.creditsConserved);
    EXPECT_DOUBLE_EQ(r.dropRate, 0.0);
}

TEST(ServingFrontend, DropPolicyBoundsOccupancyAndDropsUnderOverload)
{
    ClusterSim sim(tinyCluster(Backend::Java));
    ServingConfig cfg = controlledConfig(2.0);
    const auto r = runServingFrontend(sim, cfg);
    EXPECT_GT(r.dropped, 0u);
    EXPECT_LE(r.maxAdmissionOccupancy,
              static_cast<std::uint64_t>(cfg.admission.queueBound));
    EXPECT_EQ(r.completed, r.admitted);
    EXPECT_EQ(r.requests, r.admitted + r.dropped);
    EXPECT_TRUE(r.creditsConserved);
    EXPECT_GT(r.dropRate, 0.0);
}

TEST(ServingFrontend, ShedByClassProtectsGold)
{
    ClusterSim sim(tinyCluster(Backend::Java));
    ServingConfig cfg = controlledConfig(2.0);
    cfg.admission.policy = AdmissionPolicy::ShedByClass;
    const auto r = runServingFrontend(sim, cfg);
    // Overloaded: work is refused, and some of it via eviction.
    EXPECT_GT(r.shed + r.dropped, 0u);
    EXPECT_GT(r.shed, 0u);
    EXPECT_EQ(r.completed, r.admitted - r.shed);
    EXPECT_LE(r.maxAdmissionOccupancy,
              static_cast<std::uint64_t>(cfg.admission.queueBound));
    EXPECT_TRUE(r.creditsConserved);
}

TEST(ServingFrontend, RejectEarlyRefusesBeforeTheHardBound)
{
    ClusterSim sim(tinyCluster(Backend::Java));
    ServingConfig cfg = controlledConfig(2.0);
    cfg.admission.policy = AdmissionPolicy::RejectEarly;
    const auto r = runServingFrontend(sim, cfg);
    EXPECT_GT(r.rejected, 0u);
    EXPECT_EQ(r.dropped, 0u);
    // The sojourn budget kicks in below the hard queue bound.
    EXPECT_LE(r.maxAdmissionOccupancy,
              static_cast<std::uint64_t>(cfg.admission.queueBound));
    EXPECT_TRUE(r.creditsConserved);
}

TEST(ServingFrontend, CreditsConserveAndBoundIncastQueues)
{
    ClusterSim sim(tinyCluster(Backend::Kryo));
    // Deliberate incast: every request from nodes 1..3 targets node 0.
    ServingConfig cfg = controlledConfig(1.5);
    cfg.fixedDst = 0;
    const auto r = runServingFrontend(sim, cfg);
    EXPECT_GT(r.creditsIssued, 0u);
    EXPECT_EQ(r.creditsIssued, r.creditsReturned);
    EXPECT_TRUE(r.creditsConserved);
    EXPECT_GT(r.maxStalledFrames, 0u);
    // The receiver can have at most (n-1) * window frames outstanding
    // against it: in flight or queued. Its worker FIFO (deser backlog
    // plus the sender-side single ser job) therefore stays under the
    // credit ceiling instead of growing with offered load.
    const std::uint64_t ceiling =
        static_cast<std::uint64_t>(sim.config().nodes - 1) *
            cfg.flow.window + 1;
    EXPECT_LE(r.maxWorkerQueue, ceiling);

    // Open loop at the same load: the incast queue blows straight
    // through the credit ceiling.
    ServingConfig open = cfg;
    open.admission.policy = AdmissionPolicy::None;
    open.flow.enabled = false;
    const auto ro = runServingFrontend(sim, open);
    EXPECT_GT(ro.maxWorkerQueue, ceiling);
}

TEST(ServingFrontend, FlashCrowdRecovers)
{
    ClusterSim sim(tinyCluster(Backend::Plaincode));
    ServingConfig cfg = controlledConfig(0.7);
    cfg.requestsPerNode = 200;
    cfg.shape = load::LoadShape::flashCrowd(4.0, 0.5, 0.1);
    const auto r = runServingFrontend(sim, cfg);
    // The spike overloads the admission queue briefly; the backlog
    // clears within a modest multiple of the spike window itself.
    const double spikeSeconds =
        0.1 * static_cast<double>(cfg.requestsPerNode) /
        (cfg.utilization * sim.nodeCapacityRps());
    EXPECT_GE(r.recoverSeconds, 0.0);
    EXPECT_LT(r.recoverSeconds, 5.0 * spikeSeconds);
    EXPECT_TRUE(r.creditsConserved);
}

TEST(ServingFrontend, AdmissionBoundsTailUnderOverload)
{
    // The acceptance property at test scale: with admission + credits,
    // 2x overload keeps p99 within 10x of the 50%-load p99.
    ClusterSim sim(tinyCluster(Backend::Kryo));
    const auto calm = runServingFrontend(sim, controlledConfig(0.5));
    const auto hot = runServingFrontend(sim, controlledConfig(2.0));
    ASSERT_GT(calm.latency.p99, 0.0);
    EXPECT_LT(hot.latency.p99, 10.0 * calm.latency.p99);
    // Goodput degrades gracefully: the cluster still completes work at
    // a healthy fraction of its capacity.
    EXPECT_GT(hot.goodputRps,
              0.5 * sim.nodeCapacityRps() * sim.config().nodes);
}

// ---------------------------------------------------------------------
// Operator-side zero copy (hps views)
// ---------------------------------------------------------------------

TEST(ServingZeroCopy, HpsReceiveAndConsumeNarrationIsSubStream)
{
    KlassRegistry reg;
    workloads::SparkWorkloads apps(reg);
    Heap heap(reg);
    Addr root = apps.build(heap, "Terasort", 1 << 20, 1);

    HpsSerializer hps;
    auto stream = hps.serialize(heap, root);

    // Receive path: the attach/validation sweep, narrated.
    CountingSink sink;
    HpsImage img = hps.attach(stream, reg, &sink);
    // Operator path: one packed-field view read per segment.
    const std::uint64_t consumeBytes = 8 * img.segments().size();

    // The zero-copy property: receiving *and* computing on the
    // partition touches less memory than the stream occupies — there
    // is no materialized second copy to write or re-read.
    EXPECT_LT(sink.loadBytes + sink.storeBytes + consumeBytes,
              stream.size());
    EXPECT_EQ(sink.stores, 0u);
}

TEST(ServingZeroCopy, HpsConsumeIsCheaperThanMaterializedWalk)
{
    cluster::NodeConfig hps;
    hps.backend = Backend::Hps;
    hps.scale = 1 << 20;
    cluster::NodeConfig java = hps;
    java.backend = Backend::Java;
    const auto ph = cluster::profileNode(hps);
    const auto pj = cluster::profileNode(java);
    ASSERT_GT(ph.consumeSeconds, 0.0);
    ASSERT_GT(pj.consumeSeconds, 0.0);
    // Streaming view reads beat the dependent-load pointer chase.
    EXPECT_LT(ph.consumeSeconds, pj.consumeSeconds);
}

} // namespace
} // namespace cereal
