/**
 * @file
 * Unit tests for the memory system: DDR4 timing/bandwidth model and the
 * set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace cereal {
namespace {

class DramTest : public ::testing::Test
{
  protected:
    EventQueue eq;
    DramConfig cfg;
};

TEST_F(DramTest, ZeroLoadLatencyNear40ns)
{
    Dram dram("dram", eq, cfg);
    auto res = dram.access(0x1000, false, 0);
    double latency_ns = static_cast<double>(res.completeTick) / 1e3;
    // Table I: zero-load latency 40 ns. First access misses the row
    // buffer (activate included).
    EXPECT_GT(latency_ns, 30.0);
    EXPECT_LT(latency_ns, 60.0);
}

TEST_F(DramTest, RowHitFasterThanRowMiss)
{
    Dram dram("dram", eq, cfg);
    // Same row: second access should be a row hit and faster.
    auto miss = dram.access(0x0, false, 0);
    Tick t1 = miss.completeTick;
    auto hit = dram.access(64 * cfg.numChannels, false, t1);
    EXPECT_FALSE(miss.rowHit);
    EXPECT_TRUE(hit.rowHit);
    EXPECT_LT(hit.completeTick - t1, t1);
}

TEST_F(DramTest, PeakBandwidthMatchesTableI)
{
    // 4 channels x 19.2 GB/s = 76.8 GB/s.
    EXPECT_NEAR(cfg.peakBandwidth() / 1e9, 76.8, 1.0);
}

TEST_F(DramTest, StreamingApproachesPeakBandwidth)
{
    Dram dram("dram", eq, cfg);
    // Stream 16 MB sequentially with unlimited outstanding requests:
    // every burst is issued at tick 0 and the banks/buses serialise.
    const Addr total = 16 * 1024 * 1024;
    Tick done = 0;
    for (Addr a = 0; a < total; a += 64) {
        done = std::max(done, dram.access(a, false, 0).completeTick);
    }
    double util = dram.utilization(0, done);
    EXPECT_GT(util, 0.80);
    EXPECT_LE(util, 1.01);
}

TEST_F(DramTest, SingleStreamIsLatencyBound)
{
    Dram dram("dram", eq, cfg);
    // One access at a time (dependent chain): utilization collapses.
    Tick t = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        t = dram.access(static_cast<Addr>(i) * 4096, false, t).completeTick;
    }
    double util = dram.utilization(0, t);
    EXPECT_LT(util, 0.05);
}

TEST_F(DramTest, AccessRangeSplitsIntoBursts)
{
    Dram dram("dram", eq, cfg);
    dram.accessRange(0, 256, false, 0);
    EXPECT_EQ(dram.accesses(), 4u);
    EXPECT_EQ(dram.bytesRead(), 256u);

    dram.resetStats();
    // Unaligned range spanning two bursts.
    dram.accessRange(60, 8, true, 0);
    EXPECT_EQ(dram.accesses(), 2u);
    EXPECT_EQ(dram.bytesWritten(), 128u);
}

TEST_F(DramTest, StatsResetClearsCounts)
{
    Dram dram("dram", eq, cfg);
    dram.access(0, false, 0);
    dram.resetStats();
    EXPECT_EQ(dram.accesses(), 0u);
    EXPECT_EQ(dram.bytesRead(), 0u);
    EXPECT_DOUBLE_EQ(dram.avgLatencyNs(), 0.0);
}

TEST(CacheTest, HitAfterFill)
{
    Cache c(CacheConfig::l1());
    auto first = c.access(0x1000, false);
    EXPECT_FALSE(first.hit);
    auto second = c.access(0x1000, false);
    EXPECT_TRUE(second.hit);
    // Same line, different byte.
    EXPECT_TRUE(c.access(0x103f, false).hit);
    // Next line misses.
    EXPECT_FALSE(c.access(0x1040, false).hit);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(CacheTest, LruEvictsOldest)
{
    // Tiny 2-way cache: 2 sets of 2 ways, 64 B lines -> 256 B.
    Cache c(CacheConfig{256, 2, 64, 1});
    // Three lines mapping to set 0 (stride = 128 B for 2 sets).
    c.access(0 * 128, false);
    c.access(2 * 128, false);
    c.access(4 * 128, false); // evicts line 0
    EXPECT_FALSE(c.access(0, false).hit);
    // Line 2*128 was least-recently used after the previous access
    // filled line 0 over 4*128's... verify the re-access pattern:
    EXPECT_TRUE(c.contains(0));
}

TEST(CacheTest, DirtyEvictionReportsWriteback)
{
    Cache c(CacheConfig{256, 2, 64, 1});
    c.access(0 * 128, true); // dirty
    c.access(2 * 128, false);
    auto res = c.access(4 * 128, false); // evicts dirty line 0
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, 0u);
}

TEST(CacheTest, CleanEvictionNoWriteback)
{
    Cache c(CacheConfig{256, 2, 64, 1});
    c.access(0 * 128, false);
    c.access(2 * 128, false);
    auto res = c.access(4 * 128, false);
    EXPECT_FALSE(res.writeback);
}

TEST(CacheTest, VictimAddressRoundTrips)
{
    Cache c(CacheConfig{256, 2, 64, 1});
    const Addr probe = 0x12340080; // maps to set 1
    c.access(probe, true);
    // Force eviction of `probe` by filling its set.
    Addr conflict1 = probe + 128;
    Addr conflict2 = probe + 256;
    c.access(conflict1, false);
    auto res = c.access(conflict2, false);
    ASSERT_TRUE(res.writeback);
    EXPECT_EQ(res.victimAddr, roundDown(probe, 64));
}

TEST(CacheTest, FlushDropsEverything)
{
    Cache c(CacheConfig::l1());
    c.access(0x1000, true);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_EQ(c.accesses(), 0u);
}

TEST(CacheTest, CapacityMissBehaviour)
{
    Cache c(CacheConfig::l1()); // 32 KB
    // Touch 64 KB; re-touching the first half must miss again.
    for (Addr a = 0; a < 64 * 1024; a += 64) {
        c.access(a, false);
    }
    c.resetStats();
    for (Addr a = 0; a < 16 * 1024; a += 64) {
        c.access(a, false);
    }
    EXPECT_GT(c.missRate(), 0.99);
}

TEST(CacheTest, GeometryConfigsValid)
{
    // The three Table I levels construct without panicking.
    Cache l1(CacheConfig::l1());
    Cache l2(CacheConfig::l2());
    Cache l3(CacheConfig::l3());
    EXPECT_EQ(l1.config().sizeBytes, 32u * 1024);
    EXPECT_EQ(l2.config().sizeBytes, 1024u * 1024);
    EXPECT_EQ(l3.config().sizeBytes, 11u * 1024 * 1024);
}

} // namespace
} // namespace cereal
