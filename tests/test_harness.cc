/**
 * @file
 * Integration tests for the measurement harness: the full
 * software/accelerator measurement pipelines used by every figure
 * bench, checked for internal consistency (verified round trips,
 * sane bandwidths, expected orderings between serializers).
 */

#include <gtest/gtest.h>

#include "serde/java_serde.hh"
#include "serde/kryo_serde.hh"
#include "serde/skyway_serde.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using namespace workloads;

class HarnessTest : public ::testing::Test
{
  protected:
    HarnessTest() : micro(reg), src(reg)
    {
        Rng rng(11);
        root = micro.buildTree(src, 2, 2047, rng);
    }

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap src;
    Addr root;
};

TEST_F(HarnessTest, SoftwareMeasurementIsConsistent)
{
    JavaSerializer java;
    auto m = measureSoftware(java, src, root); // verify=true inside
    EXPECT_EQ(m.serializer, "java");
    EXPECT_EQ(m.objects, 2047u);
    EXPECT_GT(m.serSeconds, 0.0);
    EXPECT_GT(m.deserSeconds, 0.0);
    EXPECT_GT(m.streamBytes, 2047u * 8);
    EXPECT_GT(m.serIpc, 0.1);
    EXPECT_LT(m.serIpc, 6.0);
    EXPECT_GE(m.serBandwidth, 0.0);
    EXPECT_LE(m.serBandwidth, 1.0);
    EXPECT_GT(m.serEnergyJ, 0.0);
}

TEST_F(HarnessTest, KryoFasterThanJava)
{
    JavaSerializer java;
    KryoSerializer kryo;
    kryo.registerAll(reg);
    auto mj = measureSoftware(java, src, root);
    auto mk = measureSoftware(kryo, src, root);
    EXPECT_LT(mk.serSeconds, mj.serSeconds);
    EXPECT_LT(mk.deserSeconds, mj.deserSeconds);
    EXPECT_LT(mk.streamBytes, mj.streamBytes);
}

TEST_F(HarnessTest, CerealFasterThanSoftware)
{
    KryoSerializer kryo;
    kryo.registerAll(reg);
    auto mk = measureSoftware(kryo, src, root);
    auto mc = measureCereal(src, root);
    EXPECT_EQ(mc.serializer, "cereal");
    EXPECT_LT(mc.serSeconds, mk.serSeconds);
    EXPECT_LT(mc.deserSeconds, mk.deserSeconds);
    // The accelerator uses far more bandwidth than software.
    EXPECT_GT(mc.deserBandwidth, mk.deserBandwidth);
    // And far less energy than TDP-burning software.
    EXPECT_LT(mc.serEnergyJ, mk.serEnergyJ);
}

TEST_F(HarnessTest, VanillaSlowerThanPipelined)
{
    AccelConfig vanilla;
    vanilla.pipelined = false;
    auto mv = measureCereal(src, root, vanilla);
    auto mc = measureCereal(src, root);
    EXPECT_GT(mv.serSeconds, mc.serSeconds);
    EXPECT_GT(mv.deserSeconds, mc.deserSeconds);
    // Format is unchanged by the timing config.
    EXPECT_EQ(mv.streamBytes, mc.streamBytes);
}

TEST_F(HarnessTest, HeaderStripShrinksStream)
{
    auto plain = measureCereal(src, root);
    auto stripped = measureCereal(src, root, AccelConfig(),
                                  CerealOptions{/*headerStrip=*/true});
    EXPECT_LT(stripped.streamBytes, plain.streamBytes);
    // One 8 B mark word per object saved.
    EXPECT_EQ(plain.streamBytes - stripped.streamBytes, 2047u * 8);
}

TEST_F(HarnessTest, SkywayMeasurable)
{
    SkywaySerializer sky;
    auto m = measureSoftware(sky, src, root);
    EXPECT_GT(m.serSeconds, 0.0);
    // Skyway streams are bigger (headers + ref slots included).
    JavaSerializer java;
    auto mj = measureSoftware(java, src, root);
    EXPECT_GT(m.streamBytes, mj.streamBytes / 2);
}

TEST_F(HarnessTest, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 4.0, 4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST_F(HarnessTest, CorruptedRoundTripPanics)
{
    // A serializer that corrupts its output must be caught by the
    // harness's isomorphism check.
    class Corrupting : public JavaSerializer
    {
      public:
        std::string name() const override { return "corrupting"; }
        std::vector<std::uint8_t>
        serialize(Heap &heap, Addr r, MemSink *sink) override
        {
            auto bytes = JavaSerializer::serialize(heap, r, sink);
            bytes[bytes.size() / 2] ^= 0x40; // flip a data bit
            return bytes;
        }
    };
    Corrupting bad;
    EXPECT_DEATH(measureSoftware(bad, src, root), "round trip broken");
}

} // namespace
} // namespace cereal
