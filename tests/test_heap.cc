/**
 * @file
 * Unit tests for the JVM heap model: klass registry layout computation,
 * object allocation and header format, field/array accessors, layout
 * bitmaps, and the Cereal header extension.
 */

#include <gtest/gtest.h>

#include "heap/heap.hh"
#include "heap/object.hh"

namespace cereal {
namespace {

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest() : reg(/*cereal_header_ext=*/true), heap(reg)
    {
        point = reg.add("Point", {{"x", FieldType::Long},
                                  {"y", FieldType::Long}});
        node = reg.add("Node", {{"value", FieldType::Int},
                                {"next", FieldType::Reference},
                                {"label", FieldType::Reference}});
    }

    KlassRegistry reg;
    Heap heap;
    KlassId point;
    KlassId node;
};

TEST_F(HeapTest, HeaderGeometryWithExtension)
{
    EXPECT_EQ(reg.headerSlots(), 3u);
    EXPECT_TRUE(reg.hasCerealHeaderExt());
    // Point: 3 header slots + 2 fields.
    EXPECT_EQ(reg.instanceSlots(point), 5u);
}

TEST_F(HeapTest, HeaderGeometryWithoutExtension)
{
    KlassRegistry plain(false);
    KlassId p = plain.add("P", {{"x", FieldType::Long}});
    EXPECT_EQ(plain.headerSlots(), 2u);
    EXPECT_EQ(plain.instanceSlots(p), 3u);
}

TEST_F(HeapTest, AllocationAssignsHeader)
{
    Addr obj = heap.allocateInstance(point);
    ObjectView v(heap, obj);
    EXPECT_EQ(v.klassId(), point);
    EXPECT_EQ(v.slots(), 5u);
    EXPECT_EQ(v.bytes(), 40u);
    // Mark word carries a 31-bit identity hash.
    EXPECT_LE(v.identityHash(), 0x7fffffffu);
    // Extension word starts cleared.
    EXPECT_EQ(v.extWord(), 0u);
}

TEST_F(HeapTest, DistinctIdentityHashes)
{
    Addr a = heap.allocateInstance(point);
    Addr b = heap.allocateInstance(point);
    EXPECT_NE(ObjectView(heap, a).identityHash(),
              ObjectView(heap, b).identityHash());
}

TEST_F(HeapTest, FieldAccessors)
{
    Addr obj = heap.allocateInstance(point);
    ObjectView v(heap, obj);
    v.setLong(0, -123456789);
    v.setDouble(1, 2.718281828);
    EXPECT_EQ(v.getLong(0), -123456789);
    EXPECT_DOUBLE_EQ(v.getDouble(1), 2.718281828);

    v.setInt(0, -42);
    EXPECT_EQ(v.getInt(0), -42);
}

TEST_F(HeapTest, ReferenceFields)
{
    Addr a = heap.allocateInstance(node);
    Addr b = heap.allocateInstance(node);
    ObjectView va(heap, a);
    va.setRef(1, b);
    EXPECT_EQ(va.getRef(1), b);
    EXPECT_EQ(va.getRef(2), 0u); // null by default
}

TEST_F(HeapTest, LayoutBitmapMarksReferences)
{
    const auto &bm = reg.layoutBitmap(node);
    // Slots: mark, klass, ext, value, next, label.
    ASSERT_EQ(bm.size(), 6u);
    EXPECT_FALSE(bm[0]);
    EXPECT_FALSE(bm[1]);
    EXPECT_FALSE(bm[2]);
    EXPECT_FALSE(bm[3]);
    EXPECT_TRUE(bm[4]);
    EXPECT_TRUE(bm[5]);
}

TEST_F(HeapTest, PrimitiveArrayPacksElements)
{
    Addr arr = heap.allocateArray(FieldType::Int, 10);
    ObjectView v(heap, arr);
    EXPECT_TRUE(v.isArray());
    EXPECT_EQ(v.length(), 10u);
    // 3 header slots + length slot + ceil(40/8) = 9 slots.
    EXPECT_EQ(v.slots(), 9u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        v.setElem(i, i * 1000 + 7);
    }
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(v.getElem(i), i * 1000 + 7);
    }
}

TEST_F(HeapTest, CharArrayPacking)
{
    Addr arr = heap.allocateArray(FieldType::Char, 7);
    ObjectView v(heap, arr);
    // 14 bytes of data -> 2 slots.
    EXPECT_EQ(v.slots(), 3u + 1u + 2u);
    v.setElem(0, 'H');
    v.setElem(6, 'z');
    EXPECT_EQ(v.getElem(0), static_cast<std::uint64_t>('H'));
    EXPECT_EQ(v.getElem(6), static_cast<std::uint64_t>('z'));
}

TEST_F(HeapTest, ReferenceArrayBitmap)
{
    Addr arr = heap.allocateArray(FieldType::Reference, 3);
    auto bm = heap.instanceBitmap(arr);
    // mark, klass, ext, length, then 3 reference slots.
    ASSERT_EQ(bm.size(), 7u);
    EXPECT_FALSE(bm[3]);
    EXPECT_TRUE(bm[4]);
    EXPECT_TRUE(bm[5]);
    EXPECT_TRUE(bm[6]);
}

TEST_F(HeapTest, PrimitiveArrayBitmapAllZero)
{
    Addr arr = heap.allocateArray(FieldType::Long, 4);
    auto bm = heap.instanceBitmap(arr);
    for (bool b : bm) {
        EXPECT_FALSE(b);
    }
}

TEST_F(HeapTest, ExtWordPackUnpack)
{
    std::uint64_t w = extword::make(0xBEEF, 7, 0x123456789ALL);
    EXPECT_EQ(extword::serialCounter(w), 0xBEEF);
    EXPECT_EQ(extword::unitId(w), 7);
    EXPECT_EQ(extword::relAddr(w), 0x123456789Au);
}

TEST_F(HeapTest, MarkWordPackUnpack)
{
    std::uint64_t m = markword::make(0x7fffffff, 5, 0x3f);
    EXPECT_EQ(markword::hash(m), 0x7fffffffu);
    EXPECT_EQ(markword::sync(m), 5);
    EXPECT_EQ(markword::gc(m), 0x3f);
}

TEST_F(HeapTest, ClearCerealMetadata)
{
    Addr a = heap.allocateInstance(point);
    Addr b = heap.allocateInstance(node);
    ObjectView(heap, a).setExtWord(extword::make(3, 1, 100));
    ObjectView(heap, b).setExtWord(extword::make(4, 2, 200));
    heap.clearCerealMetadata();
    EXPECT_EQ(ObjectView(heap, a).extWord(), 0u);
    EXPECT_EQ(ObjectView(heap, b).extWord(), 0u);
}

TEST_F(HeapTest, OutOfBoundsAccessPanics)
{
    EXPECT_DEATH(heap.load64(heap.base() + heap.usedBytes() + 64),
                 "out of bounds");
}

TEST_F(HeapTest, DuplicateClassNameFatal)
{
    EXPECT_DEATH(
        {
            KlassRegistry r2;
            r2.add("Dup", {});
            r2.add("Dup", {});
        },
        "registered twice");
}

TEST_F(HeapTest, MetadataAddressesResolve)
{
    Addr meta = reg.metadataAddr(node);
    EXPECT_EQ(reg.idByMetadataAddr(meta), node);
    EXPECT_GE(reg.metadataBytes(node), 16u);
    // Object klass pointers hold the metadata address.
    Addr obj = heap.allocateInstance(node);
    EXPECT_EQ(heap.load64(obj + 8), meta);
}

TEST_F(HeapTest, ArrayKlassCanonicalised)
{
    KlassId a = reg.arrayKlass(FieldType::Int);
    KlassId b = reg.arrayKlass(FieldType::Int);
    EXPECT_EQ(a, b);
    EXPECT_NE(reg.arrayKlass(FieldType::Long), a);
    EXPECT_EQ(reg.klass(a).name(), "int[]");
}

TEST_F(HeapTest, IdByNameLookup)
{
    EXPECT_EQ(reg.idByName("Point"), point);
    EXPECT_EQ(reg.idByName("NoSuch"), kBadKlassId);
}

TEST_F(HeapTest, ObjectCountTracksAllocations)
{
    EXPECT_EQ(heap.objectCount(), 0u);
    heap.allocateInstance(point);
    heap.allocateArray(FieldType::Int, 3);
    EXPECT_EQ(heap.objectCount(), 2u);
}

} // namespace
} // namespace cereal
