/**
 * @file
 * Unit tests for the experiment runner subsystem: the work-stealing
 * thread pool, the deterministic SweepRunner (the same sweep run with
 * 1 and 8 threads must render byte-identical JSON), the JSON writer's
 * escaping/formatting, and the stats/harness JSON exporters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runner/sweep_runner.hh"
#include "runner/thread_pool.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "workloads/harness.hh"

namespace cereal {
namespace {

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    runner::ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4u);
    std::atomic<int> hits{0};
    for (int i = 0; i < 1000; ++i) {
        pool.submit([&hits] { ++hits; });
    }
    pool.wait();
    EXPECT_EQ(hits.load(), 1000);
}

TEST(ThreadPool, WaitIsReusable)
{
    runner::ThreadPool pool(2);
    std::atomic<int> hits{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 50; ++i) {
            pool.submit([&hits] { ++hits; });
        }
        pool.wait();
        EXPECT_EQ(hits.load(), (round + 1) * 50);
    }
}

TEST(ThreadPool, TasksRunOnWorkerThreadsNotCaller)
{
    // The pool promises execution on its workers, not any particular
    // spread across them (a fast worker may legally steal everything).
    runner::ThreadPool pool(4);
    const auto caller = std::this_thread::get_id();
    std::mutex m;
    std::set<std::thread::id> seen;
    for (int i = 0; i < 400; ++i) {
        pool.submit([&] {
            std::lock_guard<std::mutex> lk(m);
            seen.insert(std::this_thread::get_id());
        });
    }
    pool.wait();
    EXPECT_FALSE(seen.empty());
    EXPECT_EQ(seen.count(caller), 0u);
    EXPECT_LE(seen.size(), 4u);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> hits{0};
    {
        runner::ThreadPool pool(3);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&hits] { ++hits; });
        }
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(hits.load(), 200);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    runner::ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
}

// ---------------------------------------------------------------- json

TEST(Json, EscapeCoversControlAndQuoteCharacters)
{
    EXPECT_EQ(json::escape("plain"), "\"plain\"");
    EXPECT_EQ(json::escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(json::escape("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(json::escape("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(json::escape("nl\n"), "\"nl\\n\"");
    EXPECT_EQ(json::escape(std::string("nul\x01")), "\"nul\\u0001\"");
}

TEST(Json, FormatDoubleIsShortestRoundTrip)
{
    EXPECT_EQ(json::formatDouble(0.1), "0.1");
    EXPECT_EQ(json::formatDouble(2), "2");
    EXPECT_EQ(json::formatDouble(-1.5e300), "-1.5e+300");
    EXPECT_EQ(json::formatDouble(std::nan("")), "null");
    EXPECT_EQ(json::formatDouble(INFINITY), "null");
}

TEST(Json, WriterRendersNestedDocument)
{
    std::ostringstream ss;
    json::Writer w(ss, 0);
    w.beginObject();
    w.kv("a", 1);
    w.key("b");
    w.beginArray();
    w.value(1.5);
    w.value(true);
    w.null();
    w.endArray();
    w.kv("c", "x\"y");
    w.endObject();
    EXPECT_TRUE(w.balanced());
    EXPECT_EQ(ss.str(), "{\"a\":1,\"b\":[1.5,true,null],\"c\":\"x\\\"y\"}");
}

TEST(Json, WriterTracksBalance)
{
    std::ostringstream ss;
    json::Writer w(ss, 2);
    w.beginObject();
    EXPECT_FALSE(w.balanced());
    w.endObject();
    EXPECT_TRUE(w.balanced());
}

// --------------------------------------------------------------- stats

TEST(StatsJson, AllKindsExportFixedSchema)
{
    stats::Scalar sc;
    sc += 3;
    stats::Average avg;
    avg.sample(1);
    avg.sample(3);
    stats::Histogram h(4, 10.0);
    h.sample(5);
    h.sample(45); // overflow
    stats::Formula f([&] { return sc.value() * 2; });

    stats::StatGroup g("grp");
    g.add("sc", "a scalar", sc);
    g.add("avg", "an average", avg);
    g.add("hist", "a histogram", h);
    g.add("form", "a formula", f);

    std::ostringstream ss;
    json::Writer w(ss, 0);
    w.beginObject();
    g.dumpJson(w);
    w.endObject();
    ASSERT_TRUE(w.balanced());

    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"grp\":{"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"sc\":{\"kind\":\"scalar\",\"value\":3"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"mean\":2"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"overflow\":1"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"buckets\":[1,0,0,0]"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"form\":{\"kind\":\"formula\",\"value\":6"),
              std::string::npos)
        << doc;
}

TEST(StatsJson, SdMeasurementMemberSetIsStable)
{
    workloads::SdMeasurement m;
    m.serializer = "kryo";
    m.objects = 7;
    m.streamBytes = 99;
    m.serSeconds = 0.5;

    std::ostringstream ss;
    json::Writer w(ss, 0);
    w.beginObject();
    m.writeJson(w, "kryo");
    w.endObject();
    ASSERT_TRUE(w.balanced());

    const std::string doc = ss.str();
    for (const char *member :
         {"serializer", "objects", "stream_bytes", "ser_seconds",
          "deser_seconds", "ser_bandwidth", "deser_bandwidth", "ser_ipc",
          "deser_ipc", "ser_llc_miss_rate", "deser_llc_miss_rate",
          "ser_energy_j", "deser_energy_j"}) {
        EXPECT_NE(doc.find(std::string("\"") + member + "\":"),
                  std::string::npos)
            << "missing member " << member << " in " << doc;
    }
}

// -------------------------------------------------------------- runner

/**
 * A deterministic pseudo-workload: points do unequal amounts of work
 * (so parallel completion order scrambles) but the value for slot i
 * depends only on i.
 */
std::string
renderSweep(unsigned threads, std::uint64_t seed)
{
    runner::SweepRunner sweep("unit");
    std::vector<std::uint64_t> results(24, 0);
    for (std::size_t i = 0; i < results.size(); ++i) {
        sweep.add("pt-" + std::to_string(i),
                  [&results, i, seed](json::Writer &w) {
                      std::uint64_t x = seed + i * 2654435761ULL;
                      // More iterations for earlier points: finish
                      // order under parallelism inverts registration
                      // order.
                      for (std::uint64_t k = 0;
                           k < 20000 * (results.size() - i); ++k) {
                          x ^= x << 13;
                          x ^= x >> 7;
                          x ^= x << 17;
                      }
                      results[i] = x;
                      w.kv("hash", x);
                  });
    }
    sweep.setSummary([&results](json::Writer &w) {
        std::uint64_t sum = 0;
        for (auto v : results) {
            sum += v;
        }
        w.kv("hash_sum", sum);
    });
    sweep.run(threads);
    std::ostringstream ss;
    sweep.writeJson(ss, {{"seed", seed}});
    return ss.str();
}

TEST(SweepRunner, ParallelJsonIsByteIdenticalToSerial)
{
    const std::string serial = renderSweep(1, 42);
    const std::string parallel = renderSweep(8, 42);
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, SameSeedTwiceIsByteIdentical)
{
    EXPECT_EQ(renderSweep(8, 7), renderSweep(8, 7));
    EXPECT_NE(renderSweep(1, 7), renderSweep(1, 8));
}

TEST(SweepRunner, DocumentHasStableShape)
{
    runner::SweepRunner sweep("shape");
    sweep.add("only", [](json::Writer &w) { w.kv("x", 1); });
    sweep.run(1);
    std::ostringstream ss;
    sweep.writeJson(ss, {{"scale", 64}});
    const std::string doc = ss.str();
    EXPECT_NE(doc.find("\"schema\": \"cereal-bench-v1\""),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"bench\": \"shape\""), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"scale\": 64"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"name\": \"only\""), std::string::npos) << doc;
    // No summary installed: the member must be absent, not empty.
    EXPECT_EQ(doc.find("\"summary\""), std::string::npos) << doc;
    EXPECT_EQ(doc.back(), '\n');
}

TEST(SweepRunner, PointsRunExactlyOnceEach)
{
    runner::SweepRunner sweep("once");
    std::vector<std::atomic<int>> counts(16);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        sweep.add("p" + std::to_string(i),
                  [&counts, i](json::Writer &) { ++counts[i]; });
    }
    sweep.run(4);
    for (auto &c : counts) {
        EXPECT_EQ(c.load(), 1);
    }
}

} // namespace
} // namespace cereal
