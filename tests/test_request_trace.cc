/**
 * @file
 * Tests for request-scoped distributed tracing: the seeded head-based
 * sampler, the CFRM frame trace-context extension (round trip and
 * negative decode paths), timeline segment conservation, end-to-end
 * serving timelines (stall spans exactly bracketing the credit-parked
 * interval), cycle-vs-fast byte-equality of the trace report, the
 * dataflow per-stage critical path under a deliberate straggler,
 * Distribution exemplar resolution, and the CreditManager
 * refund-ordering / stall-wakeup edge cases.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/flow_control.hh"
#include "cluster/frame.hh"
#include "cluster/serving.hh"
#include "dataflow/job.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "trace/critical_path.hh"
#include "trace/request_trace.hh"

namespace cereal {
namespace {

using cluster::Backend;
using cluster::ClusterConfig;
using cluster::ClusterSim;
using cluster::CreditManager;
using cluster::FlowControlConfig;
using cluster::ServingConfig;
using cluster::runServingFrontend;
using trace::RequestTimeline;
using trace::RequestTraceConfig;
using trace::RequestTraceRecorder;
using trace::Segment;

// ---------------------------------------------------------------------
// Head-based sampler
// ---------------------------------------------------------------------

TEST(TraceSampler, RateOneKeepsEverythingRateZeroNothing)
{
    RequestTraceConfig all;
    all.sampleRate = 1.0;
    RequestTraceConfig none;
    none.sampleRate = 0.0;
    for (std::uint64_t id = 1; id < 1000; ++id) {
        EXPECT_TRUE(trace::sampleRequest(id, all));
        EXPECT_FALSE(trace::sampleRequest(id, none));
    }
}

TEST(TraceSampler, DecisionIsDeterministicAndMonotoneInRate)
{
    RequestTraceConfig lo, hi;
    lo.sampleRate = 0.1;
    hi.sampleRate = 0.6;
    lo.seed = hi.seed = 42;
    unsigned kept_lo = 0, kept_hi = 0;
    for (std::uint64_t id = 1; id <= 4000; ++id) {
        const bool a = trace::sampleRequest(id, lo);
        EXPECT_EQ(a, trace::sampleRequest(id, lo)) << "id " << id;
        if (a) {
            ++kept_lo;
            // A request kept at the low rate is kept at every higher
            // rate — the decision is a threshold on one hash draw.
            EXPECT_TRUE(trace::sampleRequest(id, hi)) << "id " << id;
        }
        kept_hi += trace::sampleRequest(id, hi);
    }
    // The hash draw is uniform: keep counts land near rate * n.
    EXPECT_NEAR(kept_lo / 4000.0, 0.1, 0.03);
    EXPECT_NEAR(kept_hi / 4000.0, 0.6, 0.03);
}

TEST(TraceSampler, SeedSelectsADifferentCohort)
{
    RequestTraceConfig a, b;
    a.sampleRate = b.sampleRate = 0.5;
    a.seed = 1;
    b.seed = 2;
    unsigned differ = 0;
    for (std::uint64_t id = 1; id <= 1000; ++id) {
        differ += trace::sampleRequest(id, a) != trace::sampleRequest(id, b);
    }
    EXPECT_GT(differ, 100u);
}

// ---------------------------------------------------------------------
// Frame trace-context extension
// ---------------------------------------------------------------------

Frame
tracedFrame()
{
    Frame f;
    f.format = 1;
    f.flags = kFrameFlagTraced;
    f.srcNode = 2;
    f.dstNode = 5;
    f.partition = 13;
    f.traceId = 0xfeedfacecafeULL;
    f.spanId = 7;
    f.payload = {0x01, 0x02, 0x03, 0x04};
    return f;
}

TEST(FrameTraceExt, RoundTripIsCanonical)
{
    const Frame f = tracedFrame();
    auto bytes = encodeFrame(f);
    EXPECT_EQ(bytes.size(),
              kFrameHeaderBytes + kFrameTraceExtBytes + f.payload.size());

    Frame d = decodeFrame(bytes);
    EXPECT_TRUE(d.hasTrace());
    EXPECT_EQ(d.traceId, f.traceId);
    EXPECT_EQ(d.spanId, f.spanId);
    EXPECT_EQ(d.payload, f.payload);
    // Canonical: the decoded frame re-encodes to the exact input bytes
    // (the fuzzer's round-trip oracle covers traced frames too).
    EXPECT_EQ(encodeFrame(d), bytes);
}

TEST(FrameTraceExt, UntracedFramesAreUnchangedOnTheWire)
{
    Frame f = tracedFrame();
    f.flags = 0;
    f.traceId = 0;
    f.spanId = 0;
    auto bytes = encodeFrame(f);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
    EXPECT_FALSE(decodeFrame(bytes).hasTrace());
}

TEST(FrameTraceExt, NullTraceIdIsMalformed)
{
    Frame f = tracedFrame();
    auto bytes = encodeFrame(f);
    // Zero the 8 trace-id bytes right after the header; the payload
    // checksum does not cover the extension, so this isolates the
    // null-id check.
    for (std::size_t i = 0; i < 8; ++i) {
        bytes[kFrameHeaderBytes + i] = 0;
    }
    auto res = tryDecodeFrame(bytes);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().status(), DecodeStatus::Malformed);
    EXPECT_EQ(res.error().offset(), kFrameHeaderBytes);
}

TEST(FrameTraceExt, NonZeroReservedWordIsMalformed)
{
    Frame f = tracedFrame();
    auto bytes = encodeFrame(f);
    bytes[kFrameHeaderBytes + 12] = 0x01; // reserved word, must be zero
    auto res = tryDecodeFrame(bytes);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().status(), DecodeStatus::Malformed);
    EXPECT_EQ(res.error().offset(), kFrameHeaderBytes + 12);
}

TEST(FrameTraceExt, TruncatedExtensionFailsCleanly)
{
    const auto golden = encodeFrame(tracedFrame());
    for (std::size_t n = kFrameHeaderBytes;
         n < kFrameHeaderBytes + kFrameTraceExtBytes; ++n) {
        std::vector<std::uint8_t> prefix(golden.begin(),
                                         golden.begin() + n);
        auto res = tryDecodeFrame(prefix);
        ASSERT_FALSE(res.ok()) << "ext prefix of " << n << " decoded";
        EXPECT_EQ(res.error().status(), DecodeStatus::Truncated);
    }
}

// ---------------------------------------------------------------------
// Timeline segment model
// ---------------------------------------------------------------------

RequestTimeline
goldenTimeline()
{
    RequestTimeline t;
    t.traceId = 9;
    t.origin = 0;
    t.dst = 1;
    t.arrival = 100;
    t.serStart = 150;
    t.serEnd = 250;
    t.send = 260;
    t.deliver = 300;
    t.deserStart = 310;
    t.done = 400;
    t.deserTicks = 60;
    return t;
}

TEST(RequestTimeline, SegmentsSumExactlyToEndToEnd)
{
    const RequestTimeline t = goldenTimeline();
    ASSERT_TRUE(t.conserves());
    Tick seg[trace::kSegmentCount];
    t.segments(seg);
    EXPECT_EQ(seg[unsigned(Segment::Admission)], 50u);
    EXPECT_EQ(seg[unsigned(Segment::Serialize)], 100u);
    EXPECT_EQ(seg[unsigned(Segment::Stall)], 10u);
    EXPECT_EQ(seg[unsigned(Segment::Wire)], 40u);
    EXPECT_EQ(seg[unsigned(Segment::Residual)], 10u);
    EXPECT_EQ(seg[unsigned(Segment::Deserialize)], 60u);
    EXPECT_EQ(seg[unsigned(Segment::Consume)], 30u);
    Tick sum = 0;
    for (Tick s : seg) {
        sum += s;
    }
    EXPECT_EQ(sum, t.endToEnd());
    EXPECT_EQ(t.dominant(), Segment::Serialize);
}

TEST(RequestTimeline, NonMonotoneStampsDoNotConserve)
{
    RequestTimeline t = goldenTimeline();
    t.send = t.serEnd - 1; // sent before serialize finished
    EXPECT_FALSE(t.conserves());
    RequestTimeline u = goldenTimeline();
    u.deserTicks = (u.done - u.deserStart) + 1; // service > window
    EXPECT_FALSE(u.conserves());
}

TEST(RequestTraceRecorder, RecordPanicsOnNonConservingTimeline)
{
    RequestTraceRecorder rec{RequestTraceConfig{}};
    RequestTimeline t = goldenTimeline();
    t.send = t.serEnd - 1;
    EXPECT_DEATH(rec.record(t), "conserv");
}

// ---------------------------------------------------------------------
// Distribution exemplars
// ---------------------------------------------------------------------

TEST(DistributionExemplar, QuantileResolvesToTheMatchingId)
{
    stats::Distribution d;
    for (std::uint64_t i = 1; i <= 100; ++i) {
        d.sample(static_cast<double>(i), i);
    }
    // Nearest-rank p99 of 1..100 is 99; the exemplar must be the id
    // recorded with that exact sample.
    EXPECT_EQ(d.exemplarAt(0.99), 99u);
    EXPECT_EQ(d.exemplarAt(1.0), 100u);
    EXPECT_EQ(d.exemplarAt(0.5), 50u);
}

TEST(DistributionExemplar, TiesBreakByIdDeterministically)
{
    stats::Distribution d;
    d.sample(1.0, 30);
    d.sample(1.0, 10);
    d.sample(1.0, 20);
    // Equal values sort by id, so the max-rank exemplar is the
    // largest id — independent of insertion order.
    EXPECT_EQ(d.exemplarAt(1.0), 30u);
    EXPECT_EQ(d.exemplarAt(0.01), 10u);
}

TEST(DistributionExemplar, LogBucketsAreCumulative)
{
    stats::Distribution d;
    d.sample(0.5e-6); // below the first 1us bound
    d.sample(1.5e-6);
    d.sample(2.0);
    const auto &bounds = stats::logBucketBounds();
    const auto counts = d.logBucketCounts();
    ASSERT_EQ(counts.size(), bounds.size());
    EXPECT_EQ(counts.front(), 1u); // <= 1us
    EXPECT_EQ(counts.back(), 3u);  // everything under 50s
    for (std::size_t i = 1; i < counts.size(); ++i) {
        EXPECT_GE(counts[i], counts[i - 1]) << "bucket " << i;
    }
}

// ---------------------------------------------------------------------
// End-to-end serving timelines
// ---------------------------------------------------------------------

ClusterConfig
tinyCluster(Backend b)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.backend = b;
    cfg.scale = 1 << 20;
    return cfg;
}

ServingConfig
tracedServing(double utilization)
{
    ServingConfig cfg;
    cfg.utilization = utilization;
    cfg.requestsPerNode = 80;
    cfg.reqTrace.sampleRate = 1.0;
    return cfg;
}

TEST(ServingTrace, EveryTimelineConservesAtFullSampling)
{
    ClusterSim sim(tinyCluster(Backend::Cereal));
    const auto r = runServingFrontend(sim, tracedServing(0.7));
    const auto &rt = r.reqTrace;
    EXPECT_EQ(rt.requests, r.requests);
    EXPECT_EQ(rt.sampled, r.completed);
    EXPECT_TRUE(rt.conserved);
    ASSERT_TRUE(rt.p99Resolved);
    ASSERT_TRUE(rt.p999Resolved);
    // The p99 exemplar's segment breakdown sums exactly to its
    // end-to-end latency — the acceptance invariant, re-checked here
    // from the raw stamps rather than the conserved flag.
    Tick seg[trace::kSegmentCount];
    rt.p99.segments(seg);
    Tick sum = 0;
    for (Tick s : seg) {
        sum += s;
    }
    EXPECT_EQ(sum, rt.p99.endToEnd());
    EXPECT_FALSE(rt.tail.empty());
}

TEST(ServingTrace, StallIsZeroWithoutFlowControl)
{
    ClusterSim sim(tinyCluster(Backend::Java));
    ServingConfig cfg = tracedServing(0.9);
    cfg.flow.enabled = false;
    const auto r = runServingFrontend(sim, cfg);
    ASSERT_GT(r.reqTrace.timelines.size(), 0u);
    for (const auto &t : r.reqTrace.timelines) {
        // No credits -> no parking: every frame launches the instant
        // serialization finishes, so the stall span is exactly empty.
        EXPECT_EQ(t.send, t.serEnd) << "trace " << t.traceId;
    }
}

TEST(ServingTrace, StallBracketsTheParkedIntervalUnderIncast)
{
    // Deliberate incast at a one-credit window: every node sends to
    // node 0, so senders must park and the stall segment captures the
    // full parked interval (and nothing else).
    ClusterSim sim(tinyCluster(Backend::Java));
    ServingConfig cfg = tracedServing(0.9);
    cfg.fixedDst = 0;
    cfg.flow.enabled = true;
    cfg.flow.window = 1;
    const auto r = runServingFrontend(sim, cfg);
    ASSERT_TRUE(r.creditsConserved);
    std::uint64_t stalled = 0;
    for (const auto &t : r.reqTrace.timelines) {
        EXPECT_GE(t.send, t.serEnd);
        stalled += t.segment(Segment::Stall) > 0;
    }
    EXPECT_GT(stalled, 0u) << "one-credit incast never parked a frame";
    EXPECT_GT(r.maxStalledFrames, 0u);
    // The aggregate stall segment in the report matches the per-
    // timeline spans.
    EXPECT_GT(r.reqTrace.segTotal[unsigned(Segment::Stall)], 0u);
}

std::string
reportJson(const trace::RequestTraceReport &rt)
{
    std::ostringstream ss;
    json::Writer w(ss, 0);
    rt.writeJson(w);
    return ss.str();
}

TEST(ServingTrace, ReportIsByteIdenticalCycleVsFastForward)
{
    ServingConfig scfg = tracedServing(0.8);
    scfg.reqTrace.sampleRate = 0.5; // exercise the sampled path too

    ClusterConfig cy = tinyCluster(Backend::Kryo);
    cy.mode = SimMode::CycleAccurate;
    ClusterConfig ff = tinyCluster(Backend::Kryo);
    ff.mode = SimMode::FastForward;

    const auto a = runServingFrontend(ClusterSim(cy), scfg);
    const auto b = runServingFrontend(ClusterSim(ff), scfg);
    EXPECT_EQ(reportJson(a.reqTrace), reportJson(b.reqTrace));
    EXPECT_EQ(a.reqTrace.sampled, b.reqTrace.sampled);
    EXPECT_LT(a.reqTrace.sampled, a.reqTrace.requests);
}

// ---------------------------------------------------------------------
// Dataflow critical path
// ---------------------------------------------------------------------

TEST(DataflowTrace, StragglerNodeBoundsTheStageBarrier)
{
    dataflow::DataflowConfig cfg;
    cfg.nodes = 4;
    cfg.backend = "java";
    cfg.job = "wordcount";
    cfg.recordsPerNode = 256;
    cfg.seed = 7;
    cfg.stragglerFactor = 8.0;
    cfg.stragglerNode = 2;
    const auto r = runDataflow(cfg);
    ASSERT_TRUE(r.invariantsOk);

    bool saw_exchange = false;
    for (const auto &s : r.stages) {
        if (!s.crit.valid) {
            continue;
        }
        saw_exchange = true;
        EXPECT_TRUE(s.crit.conserves()) << "stage " << s.name;
        // The 8x-slower node is on the bounding path: either its
        // reduce finished last or it sourced the batch that held the
        // barrier.
        EXPECT_TRUE(s.crit.node == 2 || s.crit.src == 2)
            << "stage " << s.name << " bounded by node " << s.crit.node
            << " src " << s.crit.src;
    }
    EXPECT_TRUE(saw_exchange);
}

TEST(DataflowTrace, CriticalPathSurvivesSparseSampling)
{
    // The per-stage critical path is computed from the full stamp set,
    // not the sampled subset: at a 25% sampling rate every exchanged
    // stage must still carry a valid, conserving critical path with the
    // same shape. (Absolute tick totals legitimately differ between the
    // runs — sampled frames carry the 16-byte trace extension on the
    // wire, so the sampling rate shifts simulated wire timing.)
    dataflow::DataflowConfig cfg;
    cfg.nodes = 4;
    cfg.backend = "cereal";
    cfg.job = "terasort";
    cfg.recordsPerNode = 128;
    cfg.seed = 7;
    auto sparse = cfg;
    sparse.reqTrace.sampleRate = 0.25;
    const auto a = runDataflow(cfg);
    const auto b = runDataflow(sparse);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    ASSERT_TRUE(b.invariantsOk);
    EXPECT_EQ(a.resultChecksum, b.resultChecksum)
        << "sampling rate changed a functional result";
    for (std::size_t i = 0; i < a.stages.size(); ++i) {
        EXPECT_EQ(a.stages[i].crit.valid, b.stages[i].crit.valid)
            << "stage " << a.stages[i].name;
        if (b.stages[i].crit.valid) {
            EXPECT_TRUE(b.stages[i].crit.conserves())
                << "stage " << b.stages[i].name;
            EXPECT_GT(b.stages[i].crit.total, 0u);
        }
    }
}

// ---------------------------------------------------------------------
// CreditManager edge cases
// ---------------------------------------------------------------------

TEST(CreditManagerEdge, RefundReordersAcrossPairsIndependently)
{
    FlowControlConfig fc;
    fc.window = 2;
    CreditManager cm(3, fc);
    // Drain two distinct pairs, then refund in the opposite order:
    // windows are per-pair, so the interleaving must not leak credits
    // across pairs.
    ASSERT_TRUE(cm.tryConsume(0, 1));
    ASSERT_TRUE(cm.tryConsume(0, 1));
    ASSERT_TRUE(cm.tryConsume(0, 2));
    EXPECT_FALSE(cm.tryConsume(0, 1));
    EXPECT_EQ(cm.available(0, 2), 1u);

    cm.refund(0, 2);
    EXPECT_FALSE(cm.tryConsume(0, 1)) << "cross-pair refund leaked";
    cm.refund(0, 1);
    EXPECT_TRUE(cm.tryConsume(0, 1));
    cm.refund(0, 1);
    cm.refund(0, 1);
    EXPECT_TRUE(cm.allWindowsFull());
    EXPECT_EQ(cm.issued(), 4u);
    EXPECT_EQ(cm.returned(), 4u);
}

TEST(CreditManagerEdge, OverRefundPanics)
{
    FlowControlConfig fc;
    fc.window = 1;
    CreditManager cm(2, fc);
    EXPECT_DEATH(cm.refund(0, 1), "overflow");
    ASSERT_TRUE(cm.tryConsume(0, 1));
    cm.refund(0, 1);
    EXPECT_DEATH(cm.refund(0, 1), "overflow");
}

TEST(CreditManagerEdge, AllWindowsFullSpotsALeakedCredit)
{
    FlowControlConfig fc;
    fc.window = 3;
    CreditManager cm(2, fc);
    EXPECT_TRUE(cm.allWindowsFull());
    ASSERT_TRUE(cm.tryConsume(1, 0));
    EXPECT_FALSE(cm.allWindowsFull());
    cm.refund(1, 0);
    EXPECT_TRUE(cm.allWindowsFull());
}

TEST(CreditManagerEdge, DisabledManagerNeverStallsOrCounts)
{
    FlowControlConfig fc;
    fc.enabled = false;
    fc.window = 1;
    CreditManager cm(2, fc);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(cm.tryConsume(0, 1));
    }
    EXPECT_EQ(cm.issued(), 0u);
    EXPECT_EQ(cm.returned(), 0u);
    EXPECT_TRUE(cm.allWindowsFull());
}

} // namespace
} // namespace cereal
