/**
 * @file
 * Tests for the perf-regression baseline gate: JSON parsing, the
 * tolerance policy (default + longest-substring overrides), and the
 * document-comparison engine behind tools/bench_compare — pass on an
 * identical document, fail on a perturbed metric (the acceptance
 * criterion for the gate), exact-match config policy, point matching
 * by name, metrics-subtree exclusion, and error handling for documents
 * that cannot be meaningfully compared.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runner/baseline.hh"
#include "runner/sweep_runner.hh"
#include "sim/json.hh"
#include "sim/json_parse.hh"

namespace cereal {
namespace {

using runner::compareBenchJson;
using runner::CompareResult;
using runner::Tolerance;

// ------------------------------------------------------- JSON parser

TEST(JsonParse, ParsesScalarsContainersAndEscapes)
{
    auto r = json::parse(
        R"({"a": 1.5, "b": [true, null, "x\nA"], "c": {"d": -2e3}})");
    ASSERT_TRUE(r.ok()) << r.error;
    const json::Value &v = r.value;
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
    const json::Value *b = v.find("b");
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_EQ(b->array[1].type, json::Value::Type::Null);
    EXPECT_EQ(b->array[2].str, "x\nA");
    EXPECT_DOUBLE_EQ(v.find("c")->find("d")->number, -2000.0);
}

TEST(JsonParse, PreservesMemberOrder)
{
    auto r = json::parse(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value.object.size(), 3u);
    EXPECT_EQ(r.value.object[0].first, "z");
    EXPECT_EQ(r.value.object[1].first, "a");
    EXPECT_EQ(r.value.object[2].first, "m");
}

TEST(JsonParse, ReportsErrorsWithOffset)
{
    EXPECT_FALSE(json::parse("").ok());
    EXPECT_FALSE(json::parse("{").ok());
    EXPECT_FALSE(json::parse("{\"a\": 1,}").ok());
    EXPECT_FALSE(json::parse("[1, 2] trailing").ok());
    auto r = json::parse("[1, nope]");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("offset"), std::string::npos);
}

TEST(JsonParse, RejectsRunawayNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(json::parse(deep).ok());
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    std::ostringstream ss;
    json::Writer w(ss, 2);
    w.beginObject();
    w.kv("schema", "cereal-bench-v1");
    w.key("points");
    w.beginArray();
    w.beginObject();
    w.kv("name", "pt \"quoted\"");
    w.kv("value", 0.125);
    w.endObject();
    w.endArray();
    w.endObject();
    auto r = json::parse(ss.str());
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.value.find("points")->array[0].find("name")->str,
              "pt \"quoted\"");
}

// -------------------------------------------------- tolerance policy

TEST(Tolerance, LongestMatchingOverrideWins)
{
    Tolerance tol;
    tol.defaultRel = 0.05;
    tol.overrides = {{"ser_s", 0.10}, {"points.tree.ser_s", 0.01}};
    EXPECT_DOUBLE_EQ(tol.relFor("points.list.bytes"), 0.05);
    EXPECT_DOUBLE_EQ(tol.relFor("points.list.ser_s"), 0.10);
    // Substring matching: "deser_s" contains "ser_s", so the override
    // applies there too — scope overrides with separators if unwanted.
    EXPECT_DOUBLE_EQ(tol.relFor("points.list.deser_s"), 0.10);
    EXPECT_DOUBLE_EQ(tol.relFor("points.tree.ser_s"), 0.01);
}

// ------------------------------------------------- document compare

/** A minimal valid bench document with one adjustable value. */
std::string
doc(double speedup, const std::string &bench = "fig10")
{
    std::ostringstream ss;
    ss << R"({"schema": "cereal-bench-v1", "bench": ")" << bench
       << R"(", "config": {"scale": 256}, "points": [)"
       << R"({"name": "tree-narrow", "speedup": )"
       << json::formatDouble(speedup) << "}]}";
    return ss.str();
}

TEST(BenchCompare, IdenticalDocumentsPass)
{
    const auto res = compareBenchJson(doc(12.5), doc(12.5));
    EXPECT_TRUE(res.pass) << res.report();
    EXPECT_TRUE(res.error.empty());
    EXPECT_EQ(res.comparedLeaves, 1u);
    EXPECT_NE(res.report().find("OK"), std::string::npos);
}

TEST(BenchCompare, SmallDriftWithinTolerancePasses)
{
    // 2% drift under the 5% default tolerance.
    const auto res = compareBenchJson(doc(12.75), doc(12.5));
    EXPECT_TRUE(res.pass) << res.report();
}

TEST(BenchCompare, PerturbedValueFails)
{
    // 20% drift over the 5% default: the acceptance-criterion case.
    const auto res = compareBenchJson(doc(15.0), doc(12.5));
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_EQ(res.findings[0].path, "points.tree-narrow.speedup");
    EXPECT_NE(res.findings[0].message.find("drift"), std::string::npos);
    EXPECT_NE(res.report().find("FAIL"), std::string::npos);
}

TEST(BenchCompare, OverrideToleranceChangesVerdict)
{
    Tolerance loose;
    loose.overrides = {{"speedup", 0.5}};
    EXPECT_TRUE(compareBenchJson(doc(15.0), doc(12.5), loose).pass);

    Tolerance strict;
    strict.overrides = {{"speedup", 0.001}};
    EXPECT_FALSE(compareBenchJson(doc(12.55), doc(12.5), strict).pass);
}

TEST(Tolerance, FloorLongestMatchWinsAndDefaultsToNone)
{
    Tolerance tol;
    tol.floors = {{"per_sec", 0.5}, {"points.slow.per_sec", 0.9}};
    EXPECT_DOUBLE_EQ(tol.floorFor("points.fast.per_sec"), 0.5);
    EXPECT_DOUBLE_EQ(tol.floorFor("points.slow.per_sec"), 0.9);
    EXPECT_DOUBLE_EQ(tol.floorFor("points.fast.wall_seconds"), 0.0);
}

TEST(BenchCompare, FloorIsOneSided)
{
    // Wall-clock gate semantics: any improvement passes (even one a
    // symmetric 5% band would flag as drift), a small drop passes, a
    // collapse past the ratio fails.
    Tolerance tol;
    tol.floors = {{"speedup", 0.5}};
    EXPECT_TRUE(compareBenchJson(doc(125.0), doc(12.5), tol).pass);
    EXPECT_TRUE(compareBenchJson(doc(7.0), doc(12.5), tol).pass);
    const auto res = compareBenchJson(doc(6.0), doc(12.5), tol);
    EXPECT_FALSE(res.pass);
    ASSERT_EQ(res.findings.size(), 1u);
    EXPECT_NE(res.findings[0].message.find("below floor"),
              std::string::npos);
}

TEST(BenchCompare, FloorOnlyAppliesToMatchingPaths)
{
    // A floor on one path leaves every other leaf on the symmetric
    // tolerance.
    Tolerance tol;
    tol.floors = {{"unrelated_metric", 0.5}};
    EXPECT_FALSE(compareBenchJson(doc(25.0), doc(12.5), tol).pass);
}

TEST(BenchCompare, BaselineZeroRequiresExactZero)
{
    EXPECT_TRUE(compareBenchJson(doc(0.0), doc(0.0)).pass);
    EXPECT_FALSE(compareBenchJson(doc(1e-9), doc(0.0)).pass);
}

TEST(BenchCompare, MissingAndExtraLeavesFail)
{
    const std::string two_leaves =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "p", "a": 1, "b": 2}]})";
    const std::string one_leaf =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "p", "a": 1}]})";

    const auto missing = compareBenchJson(one_leaf, two_leaves);
    EXPECT_FALSE(missing.pass);
    ASSERT_EQ(missing.findings.size(), 1u);
    EXPECT_EQ(missing.findings[0].path, "points.p.b");
    EXPECT_NE(missing.findings[0].message.find("missing"),
              std::string::npos);

    const auto extra = compareBenchJson(two_leaves, one_leaf);
    EXPECT_FALSE(extra.pass);
    ASSERT_EQ(extra.findings.size(), 1u);
    EXPECT_NE(extra.findings[0].message.find("not present in baseline"),
              std::string::npos);
}

TEST(BenchCompare, MissingAndExtraPointsFail)
{
    const std::string two_points =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "p", "a": 1}, {"name": "q", "a": 2}]})";
    const std::string one_point =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "p", "a": 1}]})";

    const auto missing = compareBenchJson(one_point, two_points);
    EXPECT_FALSE(missing.pass);
    EXPECT_EQ(missing.findings[0].path, "points.q");

    const auto extra = compareBenchJson(two_points, one_point);
    EXPECT_FALSE(extra.pass);
    EXPECT_NE(extra.findings[0].message.find("not present in baseline"),
              std::string::npos);
}

TEST(BenchCompare, PointOrderDoesNotMatter)
{
    const std::string ab =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "a", "v": 1}, {"name": "b", "v": 2}]})";
    const std::string ba =
        R"({"schema": "cereal-bench-v1", "bench": "fig10",)"
        R"( "points": [{"name": "b", "v": 2}, {"name": "a", "v": 1}]})";
    EXPECT_TRUE(compareBenchJson(ab, ba).pass);
}

TEST(BenchCompare, ConfigDifferenceIsExactMatchFailure)
{
    // A 1-unit scale difference is far under 5% relative, but config
    // is a different experiment, not a drift — must still fail.
    const std::string base = doc(12.5);
    std::string fresh = base;
    const auto pos = fresh.find("\"scale\": 256");
    ASSERT_NE(pos, std::string::npos);
    fresh.replace(pos, 12, "\"scale\": 257");
    const auto res = compareBenchJson(fresh, base);
    EXPECT_FALSE(res.pass);
    EXPECT_NE(res.findings[0].message.find("config mismatch"),
              std::string::npos);
}

TEST(BenchCompare, BenchOrSchemaMismatchIsAnErrorNotADrift)
{
    const auto res = compareBenchJson(doc(12.5, "fig11"), doc(12.5));
    EXPECT_FALSE(res.pass);
    EXPECT_NE(res.error.find("'bench' mismatch"), std::string::npos);
    EXPECT_NE(res.report().find("ERROR"), std::string::npos);

    std::string bad_schema = doc(12.5);
    const auto pos = bad_schema.find("cereal-bench-v1");
    bad_schema.replace(pos, 15, "cereal-bench-v2");
    EXPECT_FALSE(compareBenchJson(bad_schema, doc(12.5)).error.empty());
}

TEST(BenchCompare, ParseFailureIsAnError)
{
    const auto res = compareBenchJson("{not json", doc(1.0));
    EXPECT_FALSE(res.pass);
    EXPECT_NE(res.error.find("fresh document"), std::string::npos);

    const auto res2 = compareBenchJson(doc(1.0), "");
    EXPECT_NE(res2.error.find("baseline document"), std::string::npos);
}

TEST(BenchCompare, MetricsSubtreesAreExcluded)
{
    // Identical numbers everywhere except inside "metrics": must pass,
    // and the metrics leaves must not count as compared.
    const std::string with_metrics_a =
        R"({"schema": "cereal-bench-v1", "bench": "fig10", "points":)"
        R"( [{"name": "p", "v": 1, "metrics": {"interval_ticks": 100,)"
        R"( "series": [{"values": [1, 2, 3]}]}}]})";
    const std::string with_metrics_b =
        R"({"schema": "cereal-bench-v1", "bench": "fig10", "points":)"
        R"( [{"name": "p", "v": 1, "metrics": {"interval_ticks": 999,)"
        R"( "series": [{"values": [7]}]}}]})";
    const auto res = compareBenchJson(with_metrics_a, with_metrics_b);
    EXPECT_TRUE(res.pass) << res.report();
    EXPECT_EQ(res.comparedLeaves, 1u);
}

TEST(BenchCompare, GateRoundTripsARealSweepDocument)
{
    // End-to-end shape check: a real SweepRunner document compares
    // clean against itself and flags an injected drift.
    auto render = [](double v) {
        runner::SweepRunner sweep("gate_unit");
        sweep.add("pt", [v](json::Writer &w) { w.kv("seconds", v); });
        sweep.run(1);
        std::ostringstream ss;
        sweep.writeJson(ss, {{"scale", 64}});
        return ss.str();
    };
    EXPECT_TRUE(compareBenchJson(render(1.0), render(1.0)).pass);
    const auto res = compareBenchJson(render(2.0), render(1.0));
    EXPECT_FALSE(res.pass);
    EXPECT_EQ(res.findings[0].path, "points.pt.seconds");
}

} // namespace
} // namespace cereal
