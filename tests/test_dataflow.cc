/**
 * @file
 * Dataflow operator layer: operator edge cases, batch serde across
 * every backend, and the three jobs end-to-end on the cluster fabric.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dataflow/batch.hh"
#include "dataflow/job.hh"
#include "dataflow/operators.hh"
#include "dataflow/partitioner.hh"
#include "dataflow/record.hh"
#include "serde/registry.hh"

namespace cereal {
namespace dataflow {
namespace {

Record
rec(const std::string &key, std::uint64_t value)
{
    Record r;
    r.key.assign(key.begin(), key.end());
    r.value = packU64(value);
    return r;
}

// --- reduce table -------------------------------------------------------

TEST(ReduceTable, MergesDuplicateKeys)
{
    ReduceTable t(sumU64Merge());
    t.insert(rec("a", 2));
    t.insert(rec("a", 3));
    t.insert(rec("b", 1));
    EXPECT_EQ(t.size(), 2u);
    auto out = t.drain();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(unpackU64(out[0].value), 5u);
    EXPECT_EQ(unpackU64(out[1].value), 1u);
    EXPECT_TRUE(t.takeSpills().empty());
}

TEST(ReduceTable, SpillsExactlyAtThresholdBoundary)
{
    ReduceTable t(sumU64Merge(), 4);
    for (int i = 0; i < 4; ++i) {
        t.insert(rec("k" + std::to_string(i), 1));
    }
    // Four distinct keys fit the budget exactly: no spill yet.
    EXPECT_EQ(t.size(), 4u);
    EXPECT_TRUE(t.takeSpills().empty());

    // The fifth distinct key flushes the full table first.
    t.insert(rec("k4", 1));
    EXPECT_EQ(t.size(), 1u);
    auto spills = t.takeSpills();
    ASSERT_EQ(spills.size(), 1u);
    EXPECT_EQ(spills[0].size(), 4u);
    EXPECT_TRUE(std::is_sorted(spills[0].begin(), spills[0].end(),
                               recordLess));
}

TEST(ReduceTable, SingleHotKeyNeverSpills)
{
    ReduceTable t(sumU64Merge(), 1);
    for (int i = 0; i < 100; ++i) {
        t.insert(rec("hot", 1));
    }
    EXPECT_EQ(t.size(), 1u);
    EXPECT_TRUE(t.takeSpills().empty());
    auto out = t.drain();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(unpackU64(out[0].value), 100u);
}

TEST(ReduceByKey, SpilledRunsReReduceToExactCounts)
{
    // The pre-table spills under a tiny budget; re-reducing its output
    // unbounded must give the exact aggregation.
    std::vector<Record> in;
    for (int i = 0; i < 64; ++i) {
        in.push_back(rec("k" + std::to_string(i % 10), 1));
    }
    ReduceByKeyOperator pre("pre", sumU64Merge(), 3);
    ReduceByKeyOperator post("post", sumU64Merge(), 0);
    auto combined = pre.apply(in, 0, nullptr);
    EXPECT_GT(combined.size(), 10u); // spills kept duplicates
    auto exact = post.apply(std::move(combined), 0, nullptr);
    auto direct = post.apply(std::move(in), 0, nullptr);
    EXPECT_EQ(exact.size(), 10u);
    EXPECT_TRUE(std::equal(exact.begin(), exact.end(), direct.begin(),
                           direct.end()));
}

// --- multiway merge -----------------------------------------------------

TEST(MultiwayMerge, HandlesEmptyRunsAndEmptyInput)
{
    EXPECT_TRUE(multiwayMerge({}).empty());
    EXPECT_TRUE(multiwayMerge({{}, {}, {}}).empty());
    auto out = multiwayMerge({{}, {rec("a", 1)}, {}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], rec("a", 1));
}

TEST(MultiwayMerge, MergesSortedRunsToGlobalOrder)
{
    std::vector<std::vector<Record>> runs = {
        {rec("a", 1), rec("c", 1), rec("e", 1)},
        {rec("b", 1), rec("d", 1)},
        {rec("a", 0), rec("f", 1)},
    };
    for (auto &r : runs) {
        std::sort(r.begin(), r.end(), recordLess);
    }
    auto out = multiwayMerge(runs);
    ASSERT_EQ(out.size(), 7u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), recordLess));
}

TEST(MultiwayMerge, DuplicateKeyTiesPopInRunOrder)
{
    // Equal (key, value) records are interchangeable bytes, but the
    // tie-break is still pinned: run index order.
    std::vector<std::vector<Record>> runs = {
        {rec("k", 7), rec("k", 9)},
        {rec("k", 7)},
        {rec("k", 7), rec("k", 8)},
    };
    auto out = multiwayMerge(runs);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(), recordLess));
    EXPECT_EQ(unpackU64(out[0].value), 7u);
    EXPECT_EQ(unpackU64(out[1].value), 7u);
    EXPECT_EQ(unpackU64(out[2].value), 7u);
    EXPECT_EQ(unpackU64(out[3].value), 8u);
    EXPECT_EQ(unpackU64(out[4].value), 9u);
}

// --- partitioners -------------------------------------------------------

TEST(Partitioners, HashStaysInRangeAndIsKeyPure)
{
    HashPartitioner h;
    for (int i = 0; i < 200; ++i) {
        const auto r = rec("key" + std::to_string(i), 1);
        const auto p = h.partition(r, 7);
        EXPECT_LT(p, 7u);
        auto r2 = r;
        r2.value = packU64(99); // value must not affect routing
        EXPECT_EQ(h.partition(r2, 7), p);
    }
}

TEST(Partitioners, RangeSplitsOnSplitterBoundaries)
{
    std::vector<std::vector<std::uint8_t>> sp = {{'g'}, {'p'}};
    RangePartitioner range(sp);
    EXPECT_EQ(range.partition(rec("a", 0), 3), 0u);
    EXPECT_EQ(range.partition(rec("g", 0), 3), 0u); // inclusive upper
    EXPECT_EQ(range.partition(rec("h", 0), 3), 1u);
    EXPECT_EQ(range.partition(rec("p", 0), 3), 1u);
    EXPECT_EQ(range.partition(rec("z", 0), 3), 2u);
}

TEST(Partitioners, OwnerRoutesIdsToTheirHome)
{
    OwnerPartitioner owner(100);
    Record r;
    r.key = packU64(0);
    EXPECT_EQ(owner.partition(r, 4), 0u);
    r.key = packU64(199);
    EXPECT_EQ(owner.partition(r, 4), 1u);
    r.key = packU64(399);
    EXPECT_EQ(owner.partition(r, 4), 3u);
}

TEST(Partitioners, SplitterSelectionIsSortedAndSized)
{
    std::vector<std::vector<std::uint8_t>> keys;
    for (int i = 99; i >= 0; --i) {
        keys.push_back({static_cast<std::uint8_t>(i)});
    }
    auto sp = selectSplitters(std::move(keys), 4);
    ASSERT_EQ(sp.size(), 3u);
    EXPECT_TRUE(std::is_sorted(sp.begin(), sp.end()));
}

// --- batch serde --------------------------------------------------------

std::vector<Record>
assortedBatch()
{
    std::vector<Record> batch;
    batch.push_back(rec("alpha", 1));
    batch.push_back(rec("", 0)); // empty key
    Record empty_value;
    empty_value.key = {0x00, 0xff, 0x7f}; // binary key bytes
    batch.push_back(empty_value);
    Record big;
    big.key.assign(300, 0xab);
    big.value.assign(1000, 0xcd);
    batch.push_back(std::move(big));
    return batch;
}

TEST(BatchCodec, RoundTripsEveryBackend)
{
    const auto batch = assortedBatch();
    for (const auto &name : serde::availableBackends()) {
        SCOPED_TRACE(name);
        BatchCodec codec(name);
        auto enc = codec.encode(batch);
        EXPECT_EQ(enc.records, batch.size());
        EXPECT_GT(enc.streamBytes, 0u);
        auto back = codec.decode(enc.payload);
        EXPECT_TRUE(std::equal(batch.begin(), batch.end(), back.begin(),
                               back.end()));
    }
}

TEST(BatchCodec, RoundTripsEmptyBatchEveryBackend)
{
    for (const auto &name : serde::availableBackends()) {
        SCOPED_TRACE(name);
        BatchCodec codec(name);
        auto enc = codec.encode({});
        EXPECT_EQ(enc.records, 0u);
        EXPECT_TRUE(codec.decode(enc.payload).empty());
    }
}

TEST(BatchCodec, ZeroCopyViewReadMatchesGraphRead)
{
    const auto batch = assortedBatch();
    BatchCodec hps("hps");
    BatchCodec java("java");
    const auto viaViews = hps.decode(hps.encode(batch).payload);
    const auto viaGraph = java.decode(java.encode(batch).payload);
    EXPECT_TRUE(std::equal(viaViews.begin(), viaViews.end(),
                           viaGraph.begin(), viaGraph.end()));
}

TEST(BatchCodec, CompressedBackendsShrinkRedundantPayloads)
{
    std::vector<Record> batch;
    for (int i = 0; i < 32; ++i) {
        Record r;
        r.key.assign(64, 0x41);
        r.value.assign(64, 0x42);
        batch.push_back(std::move(r));
    }
    for (const auto &b : serde::backends()) {
        SCOPED_TRACE(b.name);
        BatchCodec codec(b.name);
        auto enc = codec.encode(batch);
        if (b.lzOnWire) {
            EXPECT_LT(enc.payload.size(), enc.streamBytes);
        } else {
            EXPECT_EQ(enc.payload.size(), enc.streamBytes);
        }
    }
}

// --- end-to-end jobs ----------------------------------------------------

DataflowConfig
smallConfig(const std::string &job, const std::string &backend)
{
    DataflowConfig cfg;
    cfg.nodes = 4;
    cfg.job = job;
    cfg.backend = backend;
    cfg.recordsPerNode = 96;
    cfg.seed = 3;
    cfg.skew = 0.3;
    cfg.iterations = 2;
    return cfg;
}

class DataflowJobs : public ::testing::TestWithParam<const char *>
{
};

TEST_P(DataflowJobs, CompletesOnEveryBackendWithOneChecksum)
{
    const std::string job = GetParam();
    std::uint64_t checksum = 0;
    std::uint64_t outputs = 0;
    bool first = true;
    for (const auto &name : serde::availableBackends()) {
        SCOPED_TRACE(name);
        const auto res = runDataflow(smallConfig(job, name));
        EXPECT_TRUE(res.invariantsOk);
        EXPECT_GT(res.completionSeconds, 0.0);
        EXPECT_GT(res.wireBytes, 0u);
        EXPECT_GT(res.outputRecords, 0u);
        for (const auto &s : res.stages) {
            EXPECT_GE(s.endSeconds, s.startSeconds);
            // Every stage in the three jobs exchanges: nodes^2 batches,
            // empty and self-partitions included.
            EXPECT_EQ(s.batches, 16u);
        }
        if (first) {
            checksum = res.resultChecksum;
            outputs = res.outputRecords;
            first = false;
        } else {
            // The functional result is backend-invariant: every
            // backend ships the same records and must recover them.
            EXPECT_EQ(res.resultChecksum, checksum);
            EXPECT_EQ(res.outputRecords, outputs);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllJobs, DataflowJobs,
                         ::testing::Values("wordcount", "terasort",
                                           "pagerank"));

TEST(Dataflow, FastForwardMatchesCycleAccurate)
{
    auto cfg = smallConfig("wordcount", "kryo");
    cfg.mode = SimMode::CycleAccurate;
    const auto cycle = runDataflow(cfg);
    cfg.mode = SimMode::FastForward;
    const auto fast = runDataflow(cfg);
    EXPECT_EQ(cycle.resultChecksum, fast.resultChecksum);
    EXPECT_DOUBLE_EQ(cycle.completionSeconds, fast.completionSeconds);
    EXPECT_EQ(cycle.wireBytes, fast.wireBytes);
}

TEST(Dataflow, RunsAreDeterministic)
{
    const auto a = runDataflow(smallConfig("pagerank", "plaincode"));
    const auto b = runDataflow(smallConfig("pagerank", "plaincode"));
    EXPECT_EQ(a.resultChecksum, b.resultChecksum);
    EXPECT_DOUBLE_EQ(a.completionSeconds, b.completionSeconds);
}

TEST(Dataflow, SingleHotKeyDrainsToOneReducer)
{
    // skew = 1: every record is the hot word, all but one partition's
    // batches are empty, and the job still completes exactly.
    auto cfg = smallConfig("wordcount", "java");
    cfg.skew = 1.0;
    const auto res = runDataflow(cfg);
    EXPECT_TRUE(res.invariantsOk);
    EXPECT_EQ(res.outputRecords, 1u);
    EXPECT_GT(res.skewRatio, 1.5);
}

TEST(Dataflow, SkewRaisesImbalanceAndCompletion)
{
    // PageRank ships contributions uncombined, so a hot vertex
    // concentrates receive-side load on its owner. (TeraSort would
    // not work here: sample sort adapts its splitters to the skewed
    // distribution and rebalances.)
    auto uniform = smallConfig("pagerank", "java");
    uniform.skew = 0.0;
    auto skewed = smallConfig("pagerank", "java");
    skewed.skew = 0.9;
    const auto u = runDataflow(uniform);
    const auto s = runDataflow(skewed);
    EXPECT_TRUE(u.invariantsOk);
    EXPECT_TRUE(s.invariantsOk);
    EXPECT_GT(s.skewRatio, u.skewRatio);
    EXPECT_GT(s.completionSeconds, u.completionSeconds);
}

TEST(Dataflow, StragglerStretchesCompletion)
{
    auto base = smallConfig("wordcount", "skyway");
    auto slow = base;
    slow.stragglerFactor = 4.0;
    slow.stragglerNode = 1;
    const auto b = runDataflow(base);
    const auto s = runDataflow(slow);
    EXPECT_TRUE(s.invariantsOk);
    EXPECT_EQ(s.resultChecksum, b.resultChecksum); // timing-only knob
    EXPECT_GT(s.completionSeconds, b.completionSeconds);
}

TEST(Dataflow, PageRankConservesRankMass)
{
    auto cfg = smallConfig("pagerank", "cereal");
    cfg.iterations = 4;
    const auto res = runDataflow(cfg);
    EXPECT_TRUE(res.invariantsOk);
    EXPECT_EQ(res.outputRecords,
              std::uint64_t{cfg.nodes} * cfg.recordsPerNode);
    EXPECT_EQ(res.stages.size(), 4u);
}

} // namespace
} // namespace dataflow
} // namespace cereal
