/**
 * @file
 * Property/fuzz tests: randomly generated class hierarchies and object
 * graphs (random field mixes, arrays of every element type, random
 * reference wiring with nulls, sharing and cycles) must round-trip
 * through every serializer into an isomorphic graph.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cereal/accel/device.hh"
#include "heap/object.hh"
#include "heap/walker.hh"
#include "serde/registry.hh"
#include "sim/rng.hh"

namespace cereal {
namespace {

constexpr FieldType kPrimitives[] = {
    FieldType::Boolean, FieldType::Byte,  FieldType::Char,
    FieldType::Short,   FieldType::Int,   FieldType::Long,
    FieldType::Float,   FieldType::Double,
};

/** Generates a random registry + object graph from a seed. */
struct RandomGraph
{
    RandomGraph(std::uint64_t seed, Addr heap_base)
        : rng(seed), heap(registry, heap_base)
    {
        // 1-6 random classes with 0-9 fields each.
        const unsigned num_classes = 1 + rng.below(6);
        for (unsigned c = 0; c < num_classes; ++c) {
            std::vector<FieldDesc> fields;
            const unsigned nf = rng.below(10);
            for (unsigned f = 0; f < nf; ++f) {
                FieldType t;
                if (rng.chance(0.4)) {
                    t = FieldType::Reference;
                } else {
                    t = kPrimitives[rng.below(8)];
                }
                fields.push_back(
                    {strfmt("f%u", f), t});
            }
            classes.push_back(registry.add(
                strfmt("Rand%llu_%u", (unsigned long long)seed, c),
                std::move(fields)));
        }
        // Pre-register every array klass so all serializers share ids.
        for (auto t : kPrimitives) {
            registry.arrayKlass(t);
        }
        registry.arrayKlass(FieldType::Reference);

        // Allocate 1-150 objects: 70% instances, 30% arrays.
        const unsigned n = 1 + rng.below(150);
        for (unsigned i = 0; i < n; ++i) {
            if (rng.chance(0.7)) {
                KlassId k = classes[rng.below(classes.size())];
                Addr obj = heap.allocateInstance(k);
                ObjectView v(heap, obj);
                const auto &d = registry.klass(k);
                for (std::uint32_t f = 0; f < d.numFields(); ++f) {
                    FieldType ft = d.fields()[f].type;
                    if (ft != FieldType::Reference) {
                        // Respect the JVM invariant that a narrow field
                        // holds nothing above its width.
                        unsigned bits = fieldTypeBytes(ft) * 8;
                        std::uint64_t mask =
                            bits == 64 ? ~0ULL : (1ULL << bits) - 1;
                        v.setRaw(f, rng.next() & mask);
                    }
                }
                objects.push_back(obj);
            } else if (rng.chance(0.5)) {
                FieldType t = kPrimitives[rng.below(8)];
                std::uint64_t len = rng.below(40);
                Addr arr = heap.allocateArray(t, len);
                ObjectView v(heap, arr);
                for (std::uint64_t e = 0; e < len; ++e) {
                    v.setElem(e, rng.next());
                }
                objects.push_back(arr);
            } else {
                objects.push_back(heap.allocateArray(
                    FieldType::Reference, rng.below(12)));
            }
        }

        // Random wiring: every reference slot gets null (25%) or a
        // random object (cycles and sharing arise naturally).
        for (Addr obj : objects) {
            ObjectView v(heap, obj);
            const auto &d = v.klass();
            if (d.isArray()) {
                if (d.elemType() == FieldType::Reference) {
                    for (std::uint64_t e = 0; e < v.length(); ++e) {
                        v.setRefElem(e, randomTarget());
                    }
                }
            } else {
                for (std::uint32_t f : d.refFields()) {
                    v.setRef(f, randomTarget());
                }
            }
        }

        // Root: a reference array pointing at a random sample, so a
        // healthy part of the population is reachable.
        const std::uint64_t root_len = 1 + rng.below(objects.size());
        root = heap.allocateArray(FieldType::Reference, root_len);
        ObjectView rv(heap, root);
        for (std::uint64_t i = 0; i < root_len; ++i) {
            rv.setRefElem(i, objects[rng.below(objects.size())]);
        }
    }

    Addr
    randomTarget()
    {
        if (objects.empty() || rng.chance(0.25)) {
            return 0;
        }
        return objects[rng.below(objects.size())];
    }

    Rng rng;
    KlassRegistry registry;
    Heap heap;
    std::vector<KlassId> classes;
    std::vector<Addr> objects;
    Addr root = 0;
};

std::unique_ptr<Serializer>
makeSerializer(const std::string &which, const KlassRegistry &reg)
{
    return serde::makeSerializer(which, &reg);
}

/** All six registered backends, in format-id order. */
std::vector<std::string>
allBackendNames()
{
    return serde::availableBackends();
}

class FuzzRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(FuzzRoundTrip, RandomGraphIsIsomorphicAfterRoundTrip)
{
    const auto &[which, seed] = GetParam();
    RandomGraph g(static_cast<std::uint64_t>(seed) * 7919 + 13,
                  0x1'0000'0000ULL);
    auto ser = makeSerializer(which, g.registry);

    auto stream = ser->serialize(g.heap, g.root, nullptr);
    Heap dst(g.registry, 0x9'0000'0000ULL);
    Addr nr = ser->deserialize(stream, dst, nullptr);

    std::string why;
    ASSERT_TRUE(graphEquals(g.heap, g.root, dst, nr, &why))
        << which << " seed=" << seed << ": " << why;

    // Second hop (receiver re-serializes): still isomorphic.
    auto stream2 = ser->serialize(dst, nr, nullptr);
    Heap dst2(g.registry, 0x11'0000'0000ULL);
    Addr nr2 = ser->deserialize(stream2, dst2, nullptr);
    ASSERT_TRUE(graphEquals(g.heap, g.root, dst2, nr2, &why))
        << which << " second hop, seed=" << seed << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(
    AllSerializers, FuzzRoundTrip,
    ::testing::Combine(::testing::Values("java", "kryo", "skyway",
                                         "cereal", "plaincode", "hps"),
                       ::testing::Range(0, 12)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

/**
 * Differential suite: the six serializers are independent
 * implementations of the same contract, so on any input graph their
 * decoded outputs must be mutually isomorphic. A bug that survives one
 * serializer's own round-trip (e.g. a symmetric encode/decode mistake)
 * still fails here unless all six implementations share it.
 */
class DifferentialRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(DifferentialRoundTrip, AllSerializersDecodeIsomorphicGraphs)
{
    const int seed = GetParam();
    RandomGraph g(static_cast<std::uint64_t>(seed) * 7919 + 13,
                  0x1'0000'0000ULL);

    const std::vector<std::string> which = allBackendNames();
    std::vector<std::unique_ptr<Heap>> heaps;
    std::vector<Addr> roots;
    for (std::size_t i = 0; i < which.size(); ++i) {
        auto ser = makeSerializer(which[i], g.registry);
        auto stream = ser->serialize(g.heap, g.root, nullptr);
        heaps.push_back(std::make_unique<Heap>(
            g.registry, 0x20'0000'0000ULL + 0x10'0000'0000ULL * i));
        roots.push_back(ser->deserialize(stream, *heaps[i], nullptr));
    }

    std::string why;
    for (std::size_t i = 0; i < which.size(); ++i) {
        // Against the source graph...
        ASSERT_TRUE(
            graphEquals(g.heap, g.root, *heaps[i], roots[i], &why))
            << which[i] << " vs source, seed=" << seed << ": " << why;
        // ...and pairwise against every other decoder's output.
        for (std::size_t j = i + 1; j < which.size(); ++j) {
            ASSERT_TRUE(graphEquals(*heaps[i], roots[i], *heaps[j],
                                    roots[j], &why))
                << which[i] << " vs " << which[j] << ", seed=" << seed
                << ": " << why;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialRoundTrip,
                         ::testing::Range(0, 12),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });

/**
 * Six-way chained equivalence: for every ordered backend pair (A, B),
 * the graph A's decoder materializes must survive a full round trip
 * through B and still be isomorphic to the original source graph.
 * This is strictly stronger than the pairwise comparison above: it
 * proves each decoder's *output heap* is a faithful serialization
 * input for every other backend (fresh addresses, rebuilt headers,
 * repacked arrays), not merely isomorphic when inspected.
 */
class ChainedCrossBackend : public ::testing::TestWithParam<int>
{
};

TEST_P(ChainedCrossBackend, EveryDecodersOutputFeedsEveryOtherBackend)
{
    const int seed = GetParam();
    RandomGraph g(static_cast<std::uint64_t>(seed) * 104729 + 31,
                  0x1'0000'0000ULL);

    const std::vector<std::string> which = allBackendNames();
    std::string why;
    Addr base = 0x20'0000'0000ULL;
    for (const std::string &a : which) {
        auto ser_a = makeSerializer(a, g.registry);
        auto stream_a = ser_a->serialize(g.heap, g.root, nullptr);
        Heap mid(g.registry, base);
        base += 0x10'0000'0000ULL;
        Addr mid_root = ser_a->deserialize(stream_a, mid, nullptr);
        for (const std::string &b : which) {
            if (b == a) {
                continue;
            }
            auto ser_b = makeSerializer(b, g.registry);
            auto stream_b = ser_b->serialize(mid, mid_root, nullptr);
            Heap dst(g.registry, base);
            base += 0x10'0000'0000ULL;
            Addr dst_root = ser_b->deserialize(stream_b, dst, nullptr);
            ASSERT_TRUE(
                graphEquals(g.heap, g.root, dst, dst_root, &why))
                << a << " -> " << b << " chain, seed=" << seed << ": "
                << why;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainedCrossBackend,
                         ::testing::Range(0, 4),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });

/**
 * Cross-decoding must fail loudly, not silently misparse: each format
 * carries a distinct magic, so feeding one serializer's stream to
 * another is a detectable error, never a garbage graph.
 */
TEST(DifferentialRoundTrip, FormatsCarryDistinctMagics)
{
    RandomGraph g(99991, 0x1'0000'0000ULL);
    std::vector<std::vector<std::uint8_t>> streams;
    for (const std::string &which : allBackendNames()) {
        auto ser = makeSerializer(which, g.registry);
        streams.push_back(ser->serialize(g.heap, g.root, nullptr));
    }
    for (std::size_t i = 0; i < streams.size(); ++i) {
        for (std::size_t j = i + 1; j < streams.size(); ++j) {
            ASSERT_GE(streams[i].size(), 4u);
            ASSERT_GE(streams[j].size(), 4u);
            EXPECT_FALSE(std::equal(streams[i].begin(),
                                    streams[i].begin() + 4,
                                    streams[j].begin()))
                << "streams " << i << " and " << j
                << " share a 4-byte magic";
        }
    }
}

/** The fuzz graphs also exercise the timing models without crashing. */
TEST(FuzzTiming, AcceleratorHandlesRandomGraphs)
{
    for (int seed = 0; seed < 4; ++seed) {
        RandomGraph g(static_cast<std::uint64_t>(seed) * 104729 + 7,
                      0x1'0000'0000ULL);
        EventQueue eq;
        Dram dram("dram", eq);
        CerealDevice dev(dram);
        auto t = dev.serialize(g.heap, g.root, 0);
        EXPECT_GT(t.done, 0u);

        CerealSerializer ser;
        ser.registerAll(g.registry);
        auto stream = ser.serializeToStream(g.heap, g.root);
        Heap dst(g.registry, 0x9'0000'0000ULL);
        Addr base = ser.deserializeStream(stream, dst);
        auto d = dev.deserialize(stream, base, t.done);
        EXPECT_GE(d.done, t.done);
    }
}

} // namespace
} // namespace cereal
