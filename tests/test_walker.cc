/**
 * @file
 * Unit tests for graph traversal and the graph-isomorphism oracle.
 */

#include <gtest/gtest.h>

#include "heap/object.hh"
#include "heap/walker.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using workloads::MicroWorkloads;

class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest() : micro(reg), heap(reg) {}

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap heap;
};

TEST_F(WalkerTest, ListReachableCount)
{
    Rng rng(1);
    Addr head = micro.buildList(heap, 100, rng);
    GraphWalker w(heap);
    EXPECT_EQ(w.reachable(head).size(), 100u);
}

TEST_F(WalkerTest, TreeReachableCount)
{
    Rng rng(1);
    Addr root = micro.buildTree(heap, 2, 1023, rng);
    GraphWalker w(heap);
    auto gs = w.stats(root);
    EXPECT_EQ(gs.objectCount, 1023u);
    EXPECT_EQ(gs.maxDepth, 10u); // complete binary tree of 1023 nodes
    EXPECT_EQ(gs.referenceEdges, 1022u);
}

TEST_F(WalkerTest, SharedObjectVisitedOnce)
{
    KlassId pair = reg.add("Pair", {{"a", FieldType::Reference},
                                    {"b", FieldType::Reference}});
    Addr shared = heap.allocateInstance(pair);
    Addr root = heap.allocateInstance(pair);
    ObjectView rv(heap, root);
    rv.setRef(0, shared);
    rv.setRef(1, shared);
    GraphWalker w(heap);
    EXPECT_EQ(w.reachable(root).size(), 2u);
    auto gs = w.stats(root);
    EXPECT_EQ(gs.referenceEdges, 2u);
    EXPECT_EQ(gs.nullReferences, 2u); // shared's own two null refs
}

TEST_F(WalkerTest, CyclesTerminate)
{
    Rng rng(1);
    Addr head = micro.buildList(heap, 10, rng);
    // Close the loop: tail->next = head.
    auto nodes = GraphWalker(heap).reachable(head);
    ObjectView tail(heap, nodes.back());
    tail.setRef(1, head);
    EXPECT_EQ(GraphWalker(heap).reachable(head).size(), 10u);
}

TEST_F(WalkerTest, NullRootIsEmpty)
{
    GraphWalker w(heap);
    EXPECT_TRUE(w.reachable(0).empty());
    EXPECT_EQ(w.stats(0).objectCount, 0u);
}

TEST_F(WalkerTest, DfsPreorderVisitsFirstChildFirst)
{
    Rng rng(1);
    Addr root = micro.buildTree(heap, 2, 7, rng);
    GraphWalker w(heap);
    auto order = w.reachable(root);
    ASSERT_EQ(order.size(), 7u);
    ObjectView rv(heap, root);
    // Preorder: root, left subtree fully, then right subtree.
    EXPECT_EQ(order[0], root);
    EXPECT_EQ(order[1], rv.getRef(1));
    Addr left = rv.getRef(1);
    EXPECT_EQ(order[2], ObjectView(heap, left).getRef(1));
}

TEST_F(WalkerTest, DeepListDoesNotOverflowStack)
{
    Rng rng(1);
    Addr head = micro.buildList(heap, 300000, rng);
    EXPECT_EQ(GraphWalker(heap).reachable(head).size(), 300000u);
}

class GraphEqualsTest : public ::testing::Test
{
  protected:
    GraphEqualsTest() : micro(reg), a(reg), b(reg, 0x9'0000'0000ULL) {}

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap a, b;
};

TEST_F(GraphEqualsTest, IdenticalListsEqual)
{
    Rng r1(5), r2(5);
    Addr ra = micro.buildList(a, 50, r1);
    Addr rb = micro.buildList(b, 50, r2);
    std::string why;
    EXPECT_TRUE(graphEquals(a, ra, b, rb, &why)) << why;
}

TEST_F(GraphEqualsTest, ValueMismatchDetected)
{
    Rng r1(5), r2(5);
    Addr ra = micro.buildList(a, 50, r1);
    Addr rb = micro.buildList(b, 50, r2);
    auto nodes = GraphWalker(b).reachable(rb);
    ObjectView(b, nodes[25]).setLong(0, 999999);
    std::string why;
    EXPECT_FALSE(graphEquals(a, ra, b, rb, &why));
    EXPECT_NE(why.find("value"), std::string::npos);
}

TEST_F(GraphEqualsTest, LengthMismatchDetected)
{
    Rng r1(5), r2(5);
    Addr ra = micro.buildList(a, 50, r1);
    Addr rb = micro.buildList(b, 49, r2);
    EXPECT_FALSE(graphEquals(a, ra, b, rb));
}

TEST_F(GraphEqualsTest, ClassMismatchDetected)
{
    Rng r(5);
    Addr ra = micro.buildList(a, 1, r);
    Addr rb = b.allocateInstance(micro.graphNode());
    std::string why;
    EXPECT_FALSE(graphEquals(a, ra, b, rb, &why));
    EXPECT_NE(why.find("class mismatch"), std::string::npos);
}

TEST_F(GraphEqualsTest, AliasingStructureMatters)
{
    KlassId pair = reg.add("Pair2", {{"x", FieldType::Reference},
                                     {"y", FieldType::Reference}});
    KlassId leafk = reg.add("Leaf", {{"v", FieldType::Long}});

    // Graph A: both fields point at the SAME leaf.
    Addr leaf_a = a.allocateInstance(leafk);
    Addr root_a = a.allocateInstance(pair);
    ObjectView(a, root_a).setRef(0, leaf_a);
    ObjectView(a, root_a).setRef(1, leaf_a);

    // Graph B: two distinct leaves with equal values.
    Addr leaf_b1 = b.allocateInstance(leafk);
    Addr leaf_b2 = b.allocateInstance(leafk);
    Addr root_b = b.allocateInstance(pair);
    ObjectView(b, root_b).setRef(0, leaf_b1);
    ObjectView(b, root_b).setRef(1, leaf_b2);

    std::string why;
    EXPECT_FALSE(graphEquals(a, root_a, b, root_b, &why));
    EXPECT_NE(why.find("sharing"), std::string::npos);
}

TEST_F(GraphEqualsTest, CyclicGraphsCompare)
{
    Rng r1(5), r2(5);
    Addr ra = micro.buildList(a, 10, r1);
    Addr rb = micro.buildList(b, 10, r2);
    auto na = GraphWalker(a).reachable(ra);
    auto nb = GraphWalker(b).reachable(rb);
    ObjectView(a, na.back()).setRef(1, ra);
    ObjectView(b, nb.back()).setRef(1, rb);
    EXPECT_TRUE(graphEquals(a, ra, b, rb));

    // Break the cycle in B only.
    ObjectView(b, nb.back()).setRef(1, nb[5]);
    EXPECT_FALSE(graphEquals(a, ra, b, rb));
}

TEST_F(GraphEqualsTest, RandomGraphIsomorphicToItself)
{
    Rng r1(7), r2(7);
    Addr ra = micro.buildGraph(a, 64, 8, r1);
    Addr rb = micro.buildGraph(b, 64, 8, r2);
    std::string why;
    EXPECT_TRUE(graphEquals(a, ra, b, rb, &why)) << why;
}

TEST_F(GraphEqualsTest, NullVsNonNullDetected)
{
    Rng r1(5), r2(5);
    Addr ra = micro.buildList(a, 2, r1);
    Addr rb = micro.buildList(b, 2, r2);
    auto nb = GraphWalker(b).reachable(rb);
    ObjectView(b, nb[1]).setRef(1, rb); // tail->next = head in B only
    EXPECT_FALSE(graphEquals(a, ra, b, rb));
}

} // namespace
} // namespace cereal
