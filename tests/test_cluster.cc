/**
 * @file
 * Tests for the cluster subsystem: partition-frame codec (round trip,
 * every negative status, all-prefix truncation sweep), fabric timing
 * (zero-load latency, per-flow fairness, incast serialization,
 * batching), and the event-driven cluster simulation (all-to-all
 * completeness, latency percentiles, load response, determinism, and
 * the Cereal-dominance property the bench asserts at full scale).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hh"
#include "cluster/fabric.hh"
#include "cluster/frame.hh"
#include "cluster/node.hh"

namespace cereal {
namespace {

using cluster::Backend;
using cluster::ClusterConfig;
using cluster::ClusterSim;

Frame
goldenFrame()
{
    Frame f;
    f.format = 1;
    f.flags = kFrameFlagCompressed;
    f.srcNode = 2;
    f.dstNode = 5;
    f.partition = 13;
    f.payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42, 0x42, 0x42};
    return f;
}

TEST(FrameCodec, RoundTripIsCanonical)
{
    Frame f = goldenFrame();
    auto bytes = encodeFrame(f);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());

    Frame d = decodeFrame(bytes);
    EXPECT_EQ(d.format, f.format);
    EXPECT_EQ(d.flags, f.flags);
    EXPECT_EQ(d.srcNode, f.srcNode);
    EXPECT_EQ(d.dstNode, f.dstNode);
    EXPECT_EQ(d.partition, f.partition);
    EXPECT_EQ(d.payload, f.payload);

    // Canonical: a decoded frame re-encodes to the exact input bytes
    // (the fuzzer's round-trip oracle relies on this).
    EXPECT_EQ(encodeFrame(d), bytes);
}

TEST(FrameCodec, EmptyPayloadRoundTrips)
{
    Frame f;
    f.format = 3;
    auto bytes = encodeFrame(f);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
    Frame d = decodeFrame(bytes);
    EXPECT_TRUE(d.payload.empty());
    EXPECT_EQ(encodeFrame(d), bytes);
}

DecodeStatus
statusOf(const std::vector<std::uint8_t> &bytes)
{
    auto res = tryDecodeFrame(bytes);
    EXPECT_FALSE(res.ok()) << "frame unexpectedly decoded";
    return res.ok() ? DecodeStatus::Malformed : res.error().status();
}

TEST(FrameCodec, EveryBackendFormatIdRoundTrips)
{
    // The codec must carry every registered backend — including the
    // post-paper plaincode (4) and hps (5) ids — and reject the first
    // unassigned id end-to-end.
    for (std::uint8_t id = 0; id < kFrameFormatCount; ++id) {
        Frame f = goldenFrame();
        f.format = id;
        auto res = tryDecodeFrame(encodeFrame(f));
        ASSERT_TRUE(res.ok()) << "format id " << unsigned(id);
        EXPECT_EQ(res.value().format, id);
    }
    Frame bad = goldenFrame();
    bad.format = kFrameFormatCount; // 6: one past the last backend
    auto bytes = encodeFrame(bad);
    auto res = tryDecodeFrame(bytes);
    ASSERT_FALSE(res.ok()) << "unassigned format id decoded";
    EXPECT_EQ(res.error().status(), DecodeStatus::BadClass);
}

TEST(FrameCodec, EveryNegativeStatusIsReachable)
{
    const auto golden = encodeFrame(goldenFrame());

    auto corrupt = [&](std::size_t at, std::uint8_t v) {
        auto b = golden;
        b[at] = v;
        return b;
    };

    // Magic byte wrong.
    EXPECT_EQ(statusOf(corrupt(0, 'X')), DecodeStatus::BadMagic);
    // Unsupported version.
    EXPECT_EQ(statusOf(corrupt(4, 2)), DecodeStatus::BadTag);
    // Unknown serializer format id.
    EXPECT_EQ(statusOf(corrupt(5, 9)), DecodeStatus::BadClass);
    // Reserved flag bit set (high byte of the u16 at offset 6).
    EXPECT_EQ(statusOf(corrupt(7, 0x80)), DecodeStatus::Malformed);
    // Payload byte flipped -> checksum mismatch.
    EXPECT_EQ(statusOf(corrupt(kFrameHeaderBytes, 0x00)),
              DecodeStatus::Malformed);

    // Payload shorter than declared.
    auto short_payload = golden;
    short_payload.pop_back();
    EXPECT_EQ(statusOf(short_payload), DecodeStatus::Truncated);

    // Trailing bytes after the declared payload.
    auto trailing = golden;
    trailing.push_back(0);
    EXPECT_EQ(statusOf(trailing), DecodeStatus::BadLength);

    // Declared length overflows the buffer massively (wrap-safety).
    auto huge = golden;
    for (std::size_t i = 20; i < 28; ++i) {
        huge[i] = 0xff; // payloadLen = 2^64-1
    }
    EXPECT_EQ(statusOf(huge), DecodeStatus::Truncated);
}

TEST(FrameCodec, EveryProperPrefixFailsCleanly)
{
    const auto golden = encodeFrame(goldenFrame());
    for (std::size_t n = 0; n < golden.size(); ++n) {
        std::vector<std::uint8_t> prefix(golden.begin(),
                                         golden.begin() + n);
        auto res = tryDecodeFrame(prefix);
        ASSERT_FALSE(res.ok()) << "prefix of " << n << " bytes decoded";
        if (n >= kFrameHeaderBytes) {
            // Header intact: the payload is what is missing.
            EXPECT_EQ(res.error().status(), DecodeStatus::Truncated)
                << "prefix " << n;
        }
    }
}

TEST(FrameCodec, FormatNamesMatchBackends)
{
    for (Backend b : cluster::allBackends()) {
        EXPECT_STREQ(frameFormatName(cluster::backendFormatId(b)),
                     cluster::backendName(b));
    }
    EXPECT_STREQ(frameFormatName(kFrameFormatCount), "?");
}

// ---------------------------------------------------------------------
// Fabric
// ---------------------------------------------------------------------

struct Delivery
{
    Tick when;
    std::uint32_t dst;
    std::size_t bytes;
};

struct FabricHarness
{
    EventQueue eq;
    std::vector<Delivery> deliveries;
    Fabric fabric;

    explicit FabricHarness(unsigned nodes, NetConfig cfg = NetConfig())
        : fabric(eq, nodes, cfg,
                 [this](std::uint32_t dst,
                        std::vector<std::uint8_t> frame) {
                     deliveries.push_back(
                         {eq.now(), dst, frame.size()});
                 })
    {
    }
};

TEST(Fabric, ZeroLoadLatencyMatchesLinkModel)
{
    FabricHarness h(2);
    std::vector<std::uint8_t> frame(1000, 0xab);
    const Tick tx = h.fabric.txTicks(frame.size());
    const Tick prop = h.fabric.propagationTicks();

    h.fabric.send(0, 1, frame);
    h.eq.runAll();

    ASSERT_EQ(h.deliveries.size(), 1u);
    // Store-and-forward: egress serialization + propagation + ingress
    // serialization.
    EXPECT_EQ(h.deliveries[0].when, tx + prop + tx);
    EXPECT_EQ(h.deliveries[0].dst, 1u);
    EXPECT_EQ(h.fabric.wireBytes(), frame.size());
}

TEST(Fabric, SameFlowStaysFifo)
{
    NetConfig cfg;
    cfg.batchBytes = 1; // one frame per batch
    FabricHarness h(2, cfg);
    for (int i = 1; i <= 4; ++i) {
        h.fabric.send(0, 1,
                      std::vector<std::uint8_t>(
                          static_cast<std::size_t>(i * 100), 0));
    }
    h.eq.runAll();
    ASSERT_EQ(h.deliveries.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(h.deliveries[i].bytes, (i + 1) * 100);
        if (i > 0) {
            EXPECT_GE(h.deliveries[i].when, h.deliveries[i - 1].when);
        }
    }
}

TEST(Fabric, RoundRobinSharesEgressAcrossFlows)
{
    NetConfig cfg;
    cfg.batchBytes = 1; // per-frame batches make the RR visible
    FabricHarness h(3, cfg);
    std::vector<std::uint8_t> frame(5000, 0);
    // Three frames to node 1 queued first, then one to node 2; fair
    // sharing must not make node 2 wait for the whole node-1 backlog.
    h.fabric.send(0, 1, frame);
    h.fabric.send(0, 1, frame);
    h.fabric.send(0, 1, frame);
    h.fabric.send(0, 2, frame);
    h.eq.runAll();

    ASSERT_EQ(h.deliveries.size(), 4u);
    Tick to2 = 0, last_to1 = 0;
    for (const auto &d : h.deliveries) {
        if (d.dst == 2) {
            to2 = d.when;
        } else {
            last_to1 = std::max(last_to1, d.when);
        }
    }
    EXPECT_LT(to2, last_to1)
        << "flow to node 2 starved behind node 1's backlog";
}

TEST(Fabric, IncastSerializesAtIngress)
{
    FabricHarness h(4);
    std::vector<std::uint8_t> frame(20000, 0);
    const Tick tx = h.fabric.txTicks(frame.size());
    const Tick prop = h.fabric.propagationTicks();
    // Nodes 1..3 converge on node 0 simultaneously.
    for (std::uint32_t src = 1; src < 4; ++src) {
        h.fabric.send(src, 0, frame);
    }
    h.eq.runAll();

    ASSERT_EQ(h.deliveries.size(), 3u);
    // All three egress links run in parallel, but node 0's ingress
    // admits one batch at a time: the last delivery pays ~3 ingress
    // serialization times.
    EXPECT_EQ(h.deliveries[0].when, tx + prop + tx);
    EXPECT_EQ(h.deliveries[1].when, tx + prop + 2 * tx);
    EXPECT_EQ(h.deliveries[2].when, tx + prop + 3 * tx);
}

TEST(Fabric, BatchingCoalescesSmallFrames)
{
    NetConfig cfg;
    cfg.batchBytes = 64 * 1024;
    FabricHarness h(2, cfg);
    // 32 x 1 KB to the same flow while the egress is busy with the
    // first frame: the rest coalesce into few batches.
    for (int i = 0; i < 32; ++i) {
        h.fabric.send(0, 1, std::vector<std::uint8_t>(1024, 0));
    }
    h.eq.runAll();
    EXPECT_EQ(h.deliveries.size(), 32u);
    EXPECT_LT(h.fabric.batches(), 8u);
    EXPECT_EQ(h.fabric.wireBytes(), 32u * 1024u);
}

TEST(Fabric, DeterministicAcrossRuns)
{
    auto drive = [] {
        NetConfig cfg;
        cfg.batchBytes = 4096;
        FabricHarness h(4, cfg);
        for (std::uint32_t src = 0; src < 4; ++src) {
            for (std::uint32_t dst = 0; dst < 4; ++dst) {
                if (src == dst) {
                    continue;
                }
                h.fabric.send(
                    src, dst,
                    std::vector<std::uint8_t>(
                        1000 + src * 100 + dst, 0));
            }
        }
        h.eq.runAll();
        std::vector<std::uint64_t> trace;
        for (const auto &d : h.deliveries) {
            trace.push_back(d.when);
            trace.push_back(d.dst);
            trace.push_back(d.bytes);
        }
        return trace;
    };
    EXPECT_EQ(drive(), drive());
}

// ---------------------------------------------------------------------
// Cluster simulation (tiny partitions: scale divisor floors the
// workload builders at their minimum record counts)
// ---------------------------------------------------------------------

ClusterConfig
tinyConfig(Backend b)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.backend = b;
    cfg.scale = 1 << 20;
    return cfg;
}

TEST(ClusterShuffle, AllPartitionsArriveWithOrderedPercentiles)
{
    ClusterSim sim(tinyConfig(Backend::Kryo));
    auto r = sim.runShuffle();

    EXPECT_EQ(r.frames, 12u); // 4 * 3 partitions
    EXPECT_EQ(r.latency.count, r.frames);
    EXPECT_EQ(r.wireBytes, r.frames * sim.frameBytes());
    EXPECT_GT(r.batches, 0u);
    EXPECT_GT(r.completionSeconds, 0.0);
    EXPECT_GT(r.throughputMBps, 0.0);

    EXPECT_LE(r.latency.min, r.latency.p50);
    EXPECT_LE(r.latency.p50, r.latency.p95);
    EXPECT_LE(r.latency.p95, r.latency.p99);
    EXPECT_LE(r.latency.p99, r.latency.max);
    // The last partition to finish defines completion.
    EXPECT_DOUBLE_EQ(r.completionSeconds, r.latency.max);
}

TEST(ClusterShuffle, WorkerQueueingShowsInTheTail)
{
    // Three serialize jobs share one worker: the third partition a
    // node emits waits ~2 service times, so max latency must exceed
    // min by at least one serialize time.
    ClusterSim sim(tinyConfig(Backend::Java));
    auto r = sim.runShuffle();
    EXPECT_GT(r.latency.max - r.latency.min,
              sim.profile().serSeconds * 0.9);
}

TEST(ClusterShuffle, DeterministicAcrossRuns)
{
    ClusterSim a(tinyConfig(Backend::Skyway));
    ClusterSim b(tinyConfig(Backend::Skyway));
    auto ra = a.runShuffle();
    auto rb = b.runShuffle();
    EXPECT_DOUBLE_EQ(ra.completionSeconds, rb.completionSeconds);
    EXPECT_DOUBLE_EQ(ra.latency.p99, rb.latency.p99);
    EXPECT_EQ(ra.wireBytes, rb.wireBytes);
    EXPECT_EQ(ra.batches, rb.batches);

    // And re-running on the same sim instance replays identically.
    auto ra2 = a.runShuffle();
    EXPECT_DOUBLE_EQ(ra.completionSeconds, ra2.completionSeconds);
    EXPECT_DOUBLE_EQ(ra.latency.p95, ra2.latency.p95);
}

TEST(ClusterServing, CompletesAllRequestsAndTailGrowsWithLoad)
{
    ClusterSim sim(tinyConfig(Backend::Kryo));
    auto low = sim.runServing(0.4, 100);
    auto high = sim.runServing(0.95, 100);

    EXPECT_EQ(low.completed, low.requests);
    EXPECT_EQ(high.completed, high.requests);
    EXPECT_GT(low.offeredRps, 0.0);
    EXPECT_GT(high.offeredRps, low.offeredRps);
    EXPECT_GT(high.achievedRps, low.achievedRps);
    // Open-loop queueing: more load, fatter tail.
    EXPECT_GE(high.latency.p99, low.latency.p99);
    EXPECT_LE(low.latency.p50, low.latency.p99);
}

TEST(ClusterServing, DeterministicAcrossRuns)
{
    ClusterSim a(tinyConfig(Backend::Cereal));
    ClusterSim b(tinyConfig(Backend::Cereal));
    auto ra = a.runServing(0.7, 100);
    auto rb = b.runServing(0.7, 100);
    EXPECT_DOUBLE_EQ(ra.achievedRps, rb.achievedRps);
    EXPECT_DOUBLE_EQ(ra.latency.p99, rb.latency.p99);
    EXPECT_DOUBLE_EQ(ra.durationSeconds, rb.durationSeconds);
}

TEST(ClusterServing, CerealDominatesJavaFrontier)
{
    // The bench asserts this across all backends and load points at
    // full scale; pin the headline pair here at test scale.
    ClusterSim java(tinyConfig(Backend::Java));
    ClusterSim cer(tinyConfig(Backend::Cereal));
    EXPECT_GT(cer.nodeCapacityRps(), java.nodeCapacityRps());

    auto js = java.runServing(0.7, 100);
    auto cs = cer.runServing(0.7, 100);
    EXPECT_GT(cs.achievedRps, js.achievedRps);
    EXPECT_LT(cs.latency.p99, js.latency.p99);

    EXPECT_LT(cer.runShuffle().completionSeconds,
              java.runShuffle().completionSeconds);
}

TEST(ClusterSim, ProfileAndFrameAreConsistent)
{
    ClusterSim sim(tinyConfig(Backend::Kryo));
    const auto &p = sim.profile();
    EXPECT_GT(p.serSeconds, 0.0);
    EXPECT_GT(p.deserSeconds, 0.0);
    EXPECT_GT(p.streamBytes, 0u);
    EXPECT_GT(p.objects, 0u);
    EXPECT_TRUE(p.compressed);
    EXPECT_EQ(sim.frameBytes(), kFrameHeaderBytes + p.payload.size());

    // Cereal ships the packed stream uncompressed.
    ClusterSim csim(tinyConfig(Backend::Cereal));
    EXPECT_FALSE(csim.profile().compressed);
}

} // namespace
} // namespace cereal
