/**
 * @file
 * Unit tests for the CPU core timing model: compute CPI, cache
 * integration, the bounded miss window (MLP limit), and dependent
 * (pointer-chasing) load serialization.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"

namespace cereal {
namespace {

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : dram("dram", eq) {}

    EventQueue eq;
    Dram dram;
};

TEST_F(CoreTest, ComputeAdvancesByCpi)
{
    CoreConfig cfg;
    cfg.cpiBase = 0.5;
    CoreModel core(dram, cfg);
    core.compute(1000);
    auto st = core.finish();
    EXPECT_EQ(st.instructions, 1000u);
    EXPECT_NEAR(st.ipc, 2.0, 0.01); // 1/cpi
}

TEST_F(CoreTest, CachedLoadsAreCheap)
{
    CoreModel core(dram, CoreConfig());
    core.load(0x1000, 8); // cold miss
    EXPECT_EQ(dram.accesses(), 1u);
    Tick after_miss = core.curTick();
    for (int i = 0; i < 100; ++i) {
        core.load(0x1000, 8); // L1 hits
    }
    // Hits never touch DRAM and cost ~1 cycle each.
    EXPECT_EQ(dram.accesses(), 1u);
    Tick hit_ticks = core.curTick() - after_miss;
    EXPECT_LT(hit_ticks, nsToTicks(100));
    EXPECT_GT(core.instructions(), 100u);
}

TEST_F(CoreTest, DependentLoadsSerialize)
{
    // Chain of dependent misses: total time ~ N * memory latency.
    CoreModel core(dram, CoreConfig());
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        core.loadDep(static_cast<Addr>(i) * 1'000'000, 8);
    }
    auto st = core.finish();
    double ns_per_load = static_cast<double>(st.elapsedTicks) / n / 1e3;
    EXPECT_GT(ns_per_load, 30.0); // each pays a full round trip
}

TEST_F(CoreTest, IndependentLoadsOverlap)
{
    CoreModel core(dram, CoreConfig());
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        core.load(static_cast<Addr>(i) * 1'000'000, 8);
    }
    auto st = core.finish();
    double ns_per_load = static_cast<double>(st.elapsedTicks) / n / 1e3;
    // Overlapped up to the window: far below one round trip each.
    EXPECT_LT(ns_per_load, 20.0);
}

TEST_F(CoreTest, WiderWindowIsFaster)
{
    auto run = [](unsigned window) {
        EventQueue eq;
        Dram dram("d", eq);
        CoreConfig cfg;
        cfg.missWindow = window;
        CoreModel core(dram, cfg);
        for (int i = 0; i < 500; ++i) {
            core.load(static_cast<Addr>(i) * 1'000'000, 8);
        }
        return core.finish().elapsedTicks;
    };
    EXPECT_LT(run(16), run(2));
}

TEST_F(CoreTest, StoresCountAsTraffic)
{
    CoreModel core(dram, CoreConfig());
    for (int i = 0; i < 64; ++i) {
        core.store(static_cast<Addr>(i) * 64, 64);
    }
    auto st = core.finish();
    EXPECT_GT(st.dramBytes, 0u);
}

TEST_F(CoreTest, WritebacksReachDram)
{
    CoreModel core(dram, CoreConfig());
    // Dirty far more lines than L1+L2+L3 hold, then sweep again: the
    // second pass must evict dirty victims to DRAM.
    const Addr span = 64 * 1024 * 1024;
    for (Addr a = 0; a < span; a += 4096) {
        core.store(a, 8);
    }
    std::uint64_t writes_before = dram.bytesWritten();
    for (Addr a = 0; a < span; a += 4096) {
        core.store(a + span, 8);
    }
    core.drain();
    EXPECT_GT(dram.bytesWritten(), writes_before);
}

TEST_F(CoreTest, FinishReportsConsistentStats)
{
    CoreModel core(dram, CoreConfig());
    core.compute(100);
    core.load(0x5000, 64);
    auto st = core.finish();
    EXPECT_GT(st.elapsedTicks, 0u);
    EXPECT_GT(st.instructions, 100u);
    EXPECT_GT(st.ipc, 0.0);
    EXPECT_GE(st.bandwidthUtil, 0.0);
    EXPECT_LE(st.bandwidthUtil, 1.0);
    EXPECT_GT(st.seconds, 0.0);
}

TEST_F(CoreTest, MultiLineAccessTouchesAllLines)
{
    CoreModel core(dram, CoreConfig());
    core.load(0x1000, 256); // 4 lines
    // All four lines now hit.
    std::uint64_t misses_before = core.l3().misses();
    core.load(0x1000, 256);
    EXPECT_EQ(core.l3().misses(), misses_before);
}

TEST_F(CoreTest, ZeroByteAccessIsFree)
{
    CoreModel core(dram, CoreConfig());
    core.load(0x1000, 0);
    core.store(0x1000, 0);
    core.loadDep(0x1000, 0);
    EXPECT_EQ(core.instructions(), 0u);
    EXPECT_EQ(core.curTick(), 0u);
}

} // namespace
} // namespace cereal
