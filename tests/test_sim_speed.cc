/**
 * @file
 * The sim-speed tier: tests for the simulator fast path.
 *
 *  - Arena / Pool / BufferPool / ContiguousBuffer allocation-layer
 *    semantics (alignment, chunk reuse across reset, free-list
 *    recycling, zeroing, growth).
 *  - A global-operator-new counting proof that the hot event loop
 *    allocates zero bytes per event (same technique as test_trace's
 *    null-sink guarantee).
 *  - Dram::accessRange batched fast path vs the per-burst access()
 *    loop: identical completion ticks, counters, latency accounting,
 *    and bank/bus state.
 *  - The fast-forward equivalence contract, differentially: every
 *    stat a cycle-accurate run reports must come back bit-identical
 *    from a FastForward run, at the harness level (measureSoftware /
 *    measureCereal) and the cluster level (runShuffle / runServing).
 *  - Sampled-mode serving: the shortened run's percentiles must stay
 *    within bounded error of the full cycle-accurate population.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "cluster/cluster.hh"
#include "mem/dram.hh"
#include "serde/java_serde.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/sim_mode.hh"
#include "workloads/harness.hh"
#include "workloads/micro.hh"

// ------------------------------------------------- allocation counter
//
// Program-wide operator new replacement so the event-loop test can
// assert the hot path never touches the global allocator. Counting is
// cheap and thread-safe, so replacing it for the whole test binary is
// harmless (test_trace uses the same technique).

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace cereal {
namespace {

using cluster::Backend;
using cluster::ClusterConfig;
using cluster::ClusterSim;
using cluster::LatencySummary;

// ---------------------------------------------------------- arena

TEST(Arena, RespectsAlignment)
{
    sim::Arena arena(256);
    for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        void *p = arena.alloc(3, align);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    }
    // Zero-byte allocations still return distinct live pointers.
    void *a = arena.alloc(0, 1);
    void *b = arena.alloc(0, 1);
    EXPECT_NE(a, b);
}

TEST(Arena, NonPowerOfTwoAlignmentPanics)
{
    sim::Arena arena;
    EXPECT_DEATH(arena.alloc(8, 3), "2\\^n");
}

TEST(Arena, GrowsAcrossChunksAndResetReusesThem)
{
    sim::Arena arena(128);
    std::vector<unsigned char *> ptrs;
    for (int i = 0; i < 64; ++i) {
        auto *p = static_cast<unsigned char *>(arena.alloc(100));
        std::memset(p, 0xAB, 100);
        ptrs.push_back(p);
    }
    EXPECT_GE(arena.chunkCount(), 2u);
    EXPECT_GE(arena.bytesInUse(), 64u * 100u);
    const std::size_t chunks = arena.chunkCount();
    const std::size_t reserved = arena.bytesReserved();

    arena.reset();
    EXPECT_EQ(arena.bytesInUse(), 0u);
    // Same allocation pattern after reset: no new chunks needed.
    for (int i = 0; i < 64; ++i) {
        arena.alloc(100);
    }
    EXPECT_EQ(arena.chunkCount(), chunks);
    EXPECT_EQ(arena.bytesReserved(), reserved);
}

TEST(Arena, MakeConstructsInPlace)
{
    struct Obj
    {
        int a;
        double b;
        Obj(int a, double b) : a(a), b(b) {}
    };
    sim::Arena arena;
    Obj *o = arena.make<Obj>(7, 2.5);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->a, 7);
    EXPECT_DOUBLE_EQ(o->b, 2.5);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(o) % alignof(Obj), 0u);
}

TEST(Pool, RecyclesReleasedSlots)
{
    sim::Pool<std::uint64_t> pool;
    std::uint64_t *a = pool.acquire(11u);
    EXPECT_EQ(*a, 11u);
    EXPECT_EQ(pool.liveCount(), 1u);
    pool.release(a);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeCount(), 1u);
    // The freed slot comes straight back.
    std::uint64_t *b = pool.acquire(22u);
    EXPECT_EQ(b, a);
    EXPECT_EQ(*b, 22u);
    EXPECT_EQ(pool.freeCount(), 0u);
    pool.release(b);
}

TEST(Pool, MisuseIsFatal)
{
    sim::Pool<int> pool;
    EXPECT_DEATH(pool.release(nullptr), "nullptr");
    EXPECT_DEATH(
        {
            sim::Pool<int> leaky;
            leaky.acquire(1);
        },
        "live");
}

TEST(BufferPool, RetainsCapacityAcrossRoundTrips)
{
    sim::BufferPool pool;
    auto buf = pool.acquire();
    EXPECT_EQ(pool.misses(), 1u);
    buf.resize(300 * 1024);
    const std::size_t cap = buf.capacity();
    pool.release(std::move(buf));
    EXPECT_EQ(pool.parked(), 1u);

    auto again = pool.acquire();
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(pool.parked(), 0u);
    EXPECT_TRUE(again.empty());
    EXPECT_GE(again.capacity(), cap);
}

TEST(ContiguousBuffer, ZeroesClaimsAndPreservesAcrossGrowth)
{
    sim::ContiguousBuffer buf(64);
    buf.claimZeroed(48);
    ASSERT_GE(buf.size(), 48u);
    for (std::size_t i = 0; i < 48; ++i) {
        ASSERT_EQ(buf.data()[i], 0u);
    }
    std::memset(buf.data(), 0x5A, 48);

    // Growth past capacity preserves contents and zeroes the new span.
    buf.claimZeroed(1 << 20);
    ASSERT_GE(buf.capacity(), std::size_t{1} << 20);
    for (std::size_t i = 0; i < 48; ++i) {
        ASSERT_EQ(buf.data()[i], 0x5A);
    }
    for (std::size_t i = 48; i < (1 << 20); i += 4096) {
        ASSERT_EQ(buf.data()[i], 0u);
    }
    // Monotonic: shrinking claims are no-ops.
    const std::size_t size = buf.size();
    buf.claimZeroed(100);
    EXPECT_EQ(buf.size(), size);
}

// ------------------------------------------- zero-alloc event loop

TEST(EventLoop, HotPathAllocatesZeroBytesPerEvent)
{
    // A self-rescheduling chain: the callback fits the inline buffer
    // and the heap vector is pre-reserved, so after setup the loop
    // must never reach the global allocator.
    EventQueue eq;
    eq.reserve(64);
    std::uint64_t remaining = 100000;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *remaining;
        void
        operator()()
        {
            if (--*remaining > 0) {
                eq->scheduleIn(3, Chain{eq, remaining});
            }
        }
    };
    static_assert(sizeof(Chain) <= EventQueue::Callback::kInlineBytes,
                  "chain callback must stay inline");
    eq.scheduleIn(1, Chain{&eq, &remaining});

    const std::uint64_t before = g_allocCount.load();
    eq.runAll();
    const std::uint64_t after = g_allocCount.load();
    EXPECT_EQ(after - before, 0u)
        << "event loop allocated " << (after - before)
        << " times over 100000 events";
    EXPECT_EQ(remaining, 0u);
    EXPECT_EQ(eq.executedCount(), 100000u);
}

// --------------------------------------------- DRAM batched ticking

/** Drive @p mem over [addr, addr+bytes) one burst at a time. */
Tick
perBurstRange(Dram &mem, const DramConfig &cfg, Addr addr, Addr bytes,
              bool write, Tick issue)
{
    if (bytes == 0) {
        return issue;
    }
    Tick done = issue;
    Addr first = addr / cfg.burstBytes * cfg.burstBytes;
    Addr last = (addr + bytes - 1) / cfg.burstBytes * cfg.burstBytes;
    for (Addr a = first; a <= last; a += cfg.burstBytes) {
        done = std::max(done, mem.access(a, write, issue).completeTick);
    }
    return done;
}

TEST(DramBatch, AccessRangeMatchesPerBurstLoopExactly)
{
    // Two identically configured instances, one driven through the
    // batched accessRange fast path and one through the per-burst
    // access() loop. Completion ticks, every counter, the
    // double-accumulated latency sum, and the bank/bus state (probed
    // via a follow-up access) must be bit-identical.
    DramConfig cfg;
    EventQueue eqa, eqb;
    Dram a("a", eqa, cfg);
    Dram b("b", eqb, cfg);

    struct Op
    {
        Addr addr;
        Addr bytes;
        bool write;
    };
    // Sequential stream, row-crossing span, unaligned slice, write
    // traffic revisiting rows, and a zero-length no-op.
    const std::vector<Op> ops = {
        {0, 1 << 16, false},           {1 << 16, 3 * 8192, false},
        {12345, 1000, false},          {0, 1 << 15, true},
        {40 * 8192 + 7, 8192, true},   {123, 0, false},
        {5 << 20, 64, false},
    };

    Tick ta = 0, tb = 0;
    for (const Op &op : ops) {
        ta = a.accessRange(op.addr, op.bytes, op.write, ta);
        tb = perBurstRange(b, cfg, op.addr, op.bytes, op.write, tb);
        ASSERT_EQ(ta, tb);
        ASSERT_EQ(a.accesses(), b.accesses());
        ASSERT_EQ(a.rowHits(), b.rowHits());
        ASSERT_EQ(a.bytesRead(), b.bytesRead());
        ASSERT_EQ(a.bytesWritten(), b.bytesWritten());
        // Exact double equality: the fast path must accumulate the
        // latency sum in the same order as the per-burst loop.
        ASSERT_EQ(a.avgLatencyNs(), b.avgLatencyNs());
    }

    // Registered stats match too.
    for (const char *name : {"reads", "writes", "rowHits", "rowMisses"}) {
        const auto *ea = a.stats().find(name);
        const auto *eb = b.stats().find(name);
        ASSERT_NE(ea, nullptr);
        ASSERT_NE(eb, nullptr);
        EXPECT_EQ(static_cast<const stats::Scalar *>(ea->stat)->value(),
                  static_cast<const stats::Scalar *>(eb->stat)->value())
            << name;
    }

    // Bank and bus state: the next access must see identical timing.
    auto ra = a.access(4096, false, ta + 100);
    auto rb = b.access(4096, false, tb + 100);
    EXPECT_EQ(ra.completeTick, rb.completeTick);
    EXPECT_EQ(ra.rowHit, rb.rowHit);
}

// --------------------------------------- fast-forward equivalence

class SimModeDiffTest : public ::testing::Test
{
  protected:
    SimModeDiffTest() : micro(reg), src(reg)
    {
        Rng rng(11);
        root = micro.buildTree(src, 2, 1023, rng);
    }

    KlassRegistry reg;
    workloads::MicroWorkloads micro;
    Heap src;
    Addr root;
};

/** Every SdMeasurement field, compared bit-exactly. */
void
expectSameMeasurement(const workloads::SdMeasurement &c,
                      const workloads::SdMeasurement &f)
{
    EXPECT_EQ(c.serializer, f.serializer);
    EXPECT_EQ(c.serSeconds, f.serSeconds);
    EXPECT_EQ(c.deserSeconds, f.deserSeconds);
    EXPECT_EQ(c.serBandwidth, f.serBandwidth);
    EXPECT_EQ(c.deserBandwidth, f.deserBandwidth);
    EXPECT_EQ(c.serIpc, f.serIpc);
    EXPECT_EQ(c.deserIpc, f.deserIpc);
    EXPECT_EQ(c.serLlcMissRate, f.serLlcMissRate);
    EXPECT_EQ(c.deserLlcMissRate, f.deserLlcMissRate);
    EXPECT_EQ(c.streamBytes, f.streamBytes);
    EXPECT_EQ(c.objects, f.objects);
    EXPECT_EQ(c.serEnergyJ, f.serEnergyJ);
    EXPECT_EQ(c.deserEnergyJ, f.deserEnergyJ);
}

TEST_F(SimModeDiffTest, SoftwareMeasurementIsModeInvariant)
{
    JavaSerializer java;
    CoreConfig cycle;
    cycle.mode = SimMode::CycleAccurate;
    CoreConfig fast;
    fast.mode = SimMode::FastForward;
    expectSameMeasurement(
        workloads::measureSoftware(java, src, root, cycle),
        workloads::measureSoftware(java, src, root, fast));
}

TEST_F(SimModeDiffTest, CerealMeasurementIsModeInvariant)
{
    AccelConfig cycle;
    cycle.mode = SimMode::CycleAccurate;
    AccelConfig fast;
    fast.mode = SimMode::FastForward;
    expectSameMeasurement(workloads::measureCereal(src, root, cycle),
                          workloads::measureCereal(src, root, fast));
}

void
expectSameLatency(const LatencySummary &c, const LatencySummary &f)
{
    EXPECT_EQ(c.count, f.count);
    EXPECT_EQ(c.mean, f.mean);
    EXPECT_EQ(c.min, f.min);
    EXPECT_EQ(c.max, f.max);
    EXPECT_EQ(c.p50, f.p50);
    EXPECT_EQ(c.p95, f.p95);
    EXPECT_EQ(c.p99, f.p99);
    EXPECT_EQ(c.p999, f.p999);
}

ClusterConfig
clusterConfig(SimMode mode, Backend backend = Backend::Java)
{
    ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.backend = backend;
    cfg.scale = 256;
    cfg.mode = mode;
    return cfg;
}

TEST(ClusterModeDiff, ShuffleIsModeInvariant)
{
    for (Backend b : {Backend::Java, Backend::Cereal}) {
        ClusterSim cycle(clusterConfig(SimMode::CycleAccurate, b));
        ClusterSim fast(clusterConfig(SimMode::FastForward, b));
        const auto c = cycle.runShuffle();
        const auto f = fast.runShuffle();
        EXPECT_EQ(c.completionSeconds, f.completionSeconds);
        EXPECT_EQ(c.frames, f.frames);
        EXPECT_EQ(c.wireBytes, f.wireBytes);
        EXPECT_EQ(c.batches, f.batches);
        EXPECT_EQ(c.throughputMBps, f.throughputMBps);
        expectSameLatency(c.latency, f.latency);
    }
}

TEST(ClusterModeDiff, ServingIsModeInvariant)
{
    ClusterSim cycle(clusterConfig(SimMode::CycleAccurate));
    ClusterSim fast(clusterConfig(SimMode::FastForward));
    const auto c = cycle.runServing(0.7, 64);
    const auto f = fast.runServing(0.7, 64);
    EXPECT_EQ(c.offeredRps, f.offeredRps);
    EXPECT_EQ(c.achievedRps, f.achievedRps);
    EXPECT_EQ(c.requests, f.requests);
    EXPECT_EQ(c.completed, f.completed);
    EXPECT_EQ(c.durationSeconds, f.durationSeconds);
    expectSameLatency(c.latency, f.latency);
}

TEST(ClusterModeDiff, SampledServingBoundsPercentileError)
{
    // Sampled mode simulates only the first quarter of each node's
    // arrival process. The deterministic seed makes this a fixed
    // comparison: the sampled percentiles must stay within 2x of the
    // full population's, and the sample size must be the documented
    // quarter (rounded up).
    ClusterSim cycle(clusterConfig(SimMode::CycleAccurate));
    ClusterSim sampled(clusterConfig(SimMode::Sampled));
    const auto full = cycle.runServing(0.7, 64);
    const auto samp = sampled.runServing(0.7, 64);

    EXPECT_EQ(samp.requests, 4u * ((64 + 3) / 4));
    EXPECT_EQ(samp.completed, samp.requests);
    EXPECT_GT(samp.achievedRps, 0.0);

    for (auto pair : {std::pair<double, double>{full.latency.p50,
                                               samp.latency.p50},
                      {full.latency.p95, samp.latency.p95},
                      {full.latency.p99, samp.latency.p99},
                      {full.latency.mean, samp.latency.mean}}) {
        ASSERT_GT(pair.first, 0.0);
        ASSERT_GT(pair.second, 0.0);
        const double ratio = pair.second / pair.first;
        EXPECT_GT(ratio, 0.5) << "sampled percentile collapsed";
        EXPECT_LT(ratio, 2.0) << "sampled percentile exploded";
    }
}

} // namespace
} // namespace cereal
