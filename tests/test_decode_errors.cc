/**
 * @file
 * Negative-path decode tests: the error-handling contract of the six
 * deserializers (see src/serde/decode_error.hh) and, via the shared
 * corpus sweep, the cluster partition-frame codec.
 *
 *  - ByteReader primitives report underflow and malformed varints as
 *    DecodeError, with and without an attached MemSink;
 *  - each decoder maps each class of structural corruption (pinned
 *    against the golden vectors) to the right DecodeStatus;
 *  - the truncation sweep proves that *every* proper prefix of every
 *    golden stream yields a clean error — never a crash, never a
 *    false success;
 *  - the committed regression corpus (tests/corpus) replays through
 *    all seven decoders (six serializers plus the partition frame)
 *    with zero contract violations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "cluster/frame.hh"
#include "fuzz/fuzzer.hh"
#include "heap/heap.hh"
#include "serde/bytes.hh"
#include "serde/decode_error.hh"

namespace cereal {
namespace {

using Bytes = std::vector<std::uint8_t>;

constexpr Addr kTestHeapBase = 0x9'0000'0000ULL;

// ---------------------------------------------------------------------
// ByteReader primitives
// ---------------------------------------------------------------------

DecodeStatus
statusOf(const std::function<void(ByteReader &)> &op, const Bytes &buf,
         MemSink *sink = nullptr)
{
    ByteReader r(buf, sink);
    try {
        op(r);
    } catch (const DecodeError &e) {
        return e.status();
    }
    ADD_FAILURE() << "expected a DecodeError";
    return DecodeStatus::Malformed;
}

TEST(ByteReaderNegative, RawPastEndThrowsTruncated)
{
    const Bytes buf = {1, 2, 3};
    std::uint32_t v;
    EXPECT_EQ(statusOf([&](ByteReader &r) { r.u32(); }, buf),
              DecodeStatus::Truncated);
    EXPECT_EQ(statusOf([&](ByteReader &r) { r.raw(&v, 4); }, buf),
              DecodeStatus::Truncated);
}

TEST(ByteReaderNegative, HugeLengthDoesNotWrapPosArithmetic)
{
    // Regression: `pos_ + n > size` wrapped for n near SIZE_MAX and
    // let the read through; the comparison must run against
    // remaining() instead.
    const Bytes buf = {1, 2, 3, 4};
    // Volatile so the compiler can't see the impossible memcpy bound
    // at compile time (it never reaches memcpy: raw() throws first).
    volatile std::size_t huge = SIZE_MAX - 2;
    EXPECT_EQ(statusOf([&](ByteReader &r) { r.skip(SIZE_MAX); }, buf),
              DecodeStatus::Truncated);
    EXPECT_EQ(statusOf(
                  [&](ByteReader &r) {
                      std::uint8_t dst;
                      r.skip(1); // non-zero pos_ so the sum wraps
                      r.raw(&dst, huge);
                  },
                  buf),
              DecodeStatus::Truncated);
}

TEST(ByteReaderNegative, VarintOverTenBytesThrowsBadVarint)
{
    const Bytes buf(11, 0xff);
    EXPECT_EQ(statusOf([](ByteReader &r) { r.varint(); }, buf),
              DecodeStatus::BadVarint);
}

TEST(ByteReaderNegative, VarintOverflowing64BitsThrowsBadVarint)
{
    // Nine full continuation bytes (63 bits) plus a tenth byte with
    // more than one payload bit.
    Bytes buf(9, 0xff);
    buf.push_back(0x02);
    EXPECT_EQ(statusOf([](ByteReader &r) { r.varint(); }, buf),
              DecodeStatus::BadVarint);
}

TEST(ByteReaderNegative, MaximalValidVarintStillDecodes)
{
    Bytes buf(9, 0xff);
    buf.push_back(0x01);
    ByteReader r(buf);
    EXPECT_EQ(r.varint(), ~std::uint64_t{0});
    EXPECT_TRUE(r.done());
}

TEST(ByteReaderNegative, NonTerminatedVarintThrowsTruncated)
{
    const Bytes buf = {0xff, 0xff};
    EXPECT_EQ(statusOf([](ByteReader &r) { r.varint(); }, buf),
              DecodeStatus::Truncated);
}

TEST(ByteReaderNegative, SameContractWithMemSinkAttached)
{
    // The sink-narrating path must take the bounds checks before it
    // notes any traffic, and the sink must only ever see real reads.
    CountingSink sink;
    const Bytes buf = {1, 2, 3};
    EXPECT_EQ(statusOf([](ByteReader &r) { r.u32(); }, buf, &sink),
              DecodeStatus::Truncated);
    EXPECT_EQ(statusOf([](ByteReader &r) { r.skip(SIZE_MAX); }, buf,
                       &sink),
              DecodeStatus::Truncated);
    const Bytes overlong(11, 0xff);
    EXPECT_EQ(statusOf([](ByteReader &r) { r.varint(); }, overlong,
                       &sink),
              DecodeStatus::BadVarint);
    const Bytes unterminated = {0xff, 0xff};
    EXPECT_EQ(statusOf([](ByteReader &r) { r.varint(); }, unterminated,
                       &sink),
              DecodeStatus::Truncated);
    // Only the successful byte reads were narrated: none from the
    // failed u32/skip, 10 from the overlong varint's consumed bytes,
    // 2 from the unterminated one.
    EXPECT_EQ(sink.loadBytes, 12u);
}

// ---------------------------------------------------------------------
// Structural corruption -> DecodeStatus, per format
// ---------------------------------------------------------------------

class DecodeErrors : public ::testing::Test
{
  protected:
    Bytes
    golden(const std::string &format)
    {
        for (const auto &e : fuzzer.corpus()) {
            if (e.format == format) {
                return e.bytes;
            }
        }
        ADD_FAILURE() << "no corpus entry for " << format;
        return {};
    }

    /** Byte offset of @p pattern inside @p hay (must exist). */
    std::size_t
    offsetOf(const Bytes &hay, const Bytes &pattern)
    {
        auto it = std::search(hay.begin(), hay.end(), pattern.begin(),
                              pattern.end());
        EXPECT_NE(it, hay.end());
        return static_cast<std::size_t>(it - hay.begin());
    }

    /** Decode @p bytes with @p format; expect failure with @p want. */
    void
    expectStatus(const std::string &format, const Bytes &bytes,
                 DecodeStatus want)
    {
        Heap dst(fuzzer.registry(), kTestHeapBase);
        auto res = fuzzer.serializer(format).tryDeserialize(bytes, dst);
        ASSERT_FALSE(res.ok()) << format << ": decode unexpectedly ok";
        EXPECT_EQ(res.error().status(), want)
            << format << ": " << res.error().what();
    }

    DecoderFuzzer fuzzer;
};

TEST_F(DecodeErrors, EachFormatRejectsForeignAndEmptyStreams)
{
    const std::vector<std::string> formats = {
        "java", "kryo", "skyway", "cereal", "plaincode", "hps"};
    for (const auto &decoder : formats) {
        Heap dst(fuzzer.registry(), kTestHeapBase);
        EXPECT_FALSE(
            fuzzer.serializer(decoder).tryDeserialize({}, dst).ok())
            << decoder << " accepted an empty stream";
        for (const auto &producer : formats) {
            if (producer == decoder) {
                continue;
            }
            expectStatus(decoder, golden(producer),
                         DecodeStatus::BadMagic);
        }
    }
}

TEST_F(DecodeErrors, JavaHugeArrayCountIsBadLength)
{
    Bytes b = golden("java");
    // The int[3] length word, immediately followed by elements 1,2,3.
    std::size_t at = offsetOf(
        b, {3, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0});
    b[at] = b[at + 1] = b[at + 2] = b[at + 3] = 0xff;
    expectStatus("java", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, JavaUnknownRecordTagIsBadTag)
{
    Bytes b = golden("java");
    // Last record's TC_OBJECT (0x73), followed by TC_REFERENCE (0x71).
    std::size_t at = offsetOf(b, {0x73, 0x71});
    b[at] = 0x7a;
    expectStatus("java", b, DecodeStatus::BadTag);
}

TEST_F(DecodeErrors, JavaClassdescHandleOutOfRangeIsBadHandle)
{
    Bytes b = golden("java");
    std::size_t at = offsetOf(b, {0x73, 0x71}) + 2;
    b[at] = 0x63; // classdesc back-reference handle 0x63: never issued
    expectStatus("java", b, DecodeStatus::BadHandle);
}

TEST_F(DecodeErrors, JavaUnknownClassNameIsBadClass)
{
    Bytes b = golden("java");
    std::size_t at = offsetOf(b, {'P', 'a', 'i', 'r'});
    b[at] = 'Q';
    expectStatus("java", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, KryoUnregisteredClassIdIsBadClass)
{
    Bytes b = golden("kryo");
    b[4] = 0xff; // first record's class id u32
    b[7] = 0x7f;
    expectStatus("kryo", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, KryoOverlongVarintIsBadVarint)
{
    Bytes b = golden("kryo");
    // Keep magic + class id + null-check byte, then feed an 11-byte
    // all-continuation run where a field varint is expected.
    b.resize(9);
    b.insert(b.end(), 11, 0xff);
    expectStatus("kryo", b, DecodeStatus::BadVarint);
}

TEST_F(DecodeErrors, KryoHugeArrayLengthIsBadLength)
{
    Bytes b = golden("kryo");
    // int[] record: class id 2, then the length varint (3).
    std::size_t at = offsetOf(b, {2, 0, 0, 0, 3}) + 4;
    b[at] = 0x7f; // 127 elements * 4 B each cannot fit in what's left
    expectStatus("kryo", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, SkywayHugeDataSectionIsBadLength)
{
    Bytes b = golden("skyway");
    std::fill(b.begin() + 4, b.begin() + 12, 0xff);
    expectStatus("skyway", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, SkywayUnknownTypeIdIsBadClass)
{
    Bytes b = golden("skyway");
    b[20] = 0xe7; // first object's type-id slot -> 999
    b[21] = 0x03;
    expectStatus("skyway", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, SkywayMidObjectReferenceIsBadHandle)
{
    Bytes b = golden("skyway");
    ASSERT_EQ(b[36], 0x61); // root's first ref slot: tagged offset 0x30
    b[36] = 0x0d;           // tagged offset 6: inside an object
    expectStatus("skyway", b, DecodeStatus::BadHandle);
}

TEST_F(DecodeErrors, SkywayUntaggedReferenceIsMalformed)
{
    Bytes b = golden("skyway");
    ASSERT_EQ(b[36], 0x61);
    b[36] = 0x60; // non-null but tag bit clear
    expectStatus("skyway", b, DecodeStatus::Malformed);
}

TEST_F(DecodeErrors, CerealClassIdAbove32BitsIsBadClass)
{
    Bytes b = golden("cereal");
    // First object's class-id value entry (second value-array word).
    // 2^32 + 1 would alias to the valid class id 1 under a truncating
    // u32 cast; the decoder must validate the full 64-bit value.
    const std::size_t at = 69 + 8;
    const std::uint64_t evil = (std::uint64_t{1} << 32) | 1;
    std::memcpy(b.data() + at, &evil, 8);
    expectStatus("cereal", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, CerealSectionSizeOverflowIsBadLength)
{
    Bytes b = golden("cereal");
    std::fill(b.begin() + 13, b.begin() + 21, 0xff); // value-array size
    expectStatus("cereal", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, CerealOutOfGraphRefTokenIsBadHandle)
{
    Bytes b = golden("cereal");
    std::fill(b.begin() + 69 + 18 * 8, b.begin() + 69 + 18 * 8 + 4,
              0xff); // packed reference buckets
    expectStatus("cereal", b, DecodeStatus::BadHandle);
}

TEST_F(DecodeErrors, CerealTruncatedStreamIsTruncated)
{
    Bytes b = golden("cereal");
    b.resize(40);
    expectStatus("cereal", b, DecodeStatus::Truncated);
}

// The plaincode golden stream (45 B) is magic, then width-classed BFS
// records: root Pair at 4 (varint klass id, varint ref tokens, 4 B int
// tag), Node n1 at 11 (klass, 8 B long value, varint ref), int[3] at
// 21 (klass, varint length, packed 4 B elements), Node n2 at 35.
// Reference tokens are 0 for null, else BFS handle + 1.

TEST_F(DecodeErrors, PlaincodeUnknownKlassIdIsBadClass)
{
    Bytes b = golden("plaincode");
    // Root record's klass id varint: 0xff continues into the next
    // byte (token 2, top bit clear), decoding to id 383 — far past
    // the three registered klasses.
    b[4] = 0xff;
    expectStatus("plaincode", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, PlaincodeHugeArrayLengthIsBadLength)
{
    Bytes b = golden("plaincode");
    // The int[3] record's length varint: 127 elements of 4 B can
    // never fit in the remaining stream, and the allocation cap must
    // trip before any memory is reserved.
    ASSERT_EQ(b[22], 3);
    b[22] = 0x7f;
    expectStatus("plaincode", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, PlaincodeOutOfGraphRefTokenIsBadHandle)
{
    Bytes b = golden("plaincode");
    ASSERT_EQ(b[5], 2); // root's field `a`: token 2 = BFS handle 1
    b[5] = 0x7f;        // handle 126: the stream only carries four
    expectStatus("plaincode", b, DecodeStatus::BadHandle);
}

TEST_F(DecodeErrors, PlaincodeTruncatedMidRecordIsTruncated)
{
    Bytes b = golden("plaincode");
    b.resize(15); // cuts Node n1 inside its 8 B value slot
    expectStatus("plaincode", b, DecodeStatus::Truncated);
}

// The hps golden stream (147 B) is magic, u32 segment count, u64
// region size, then the segment region at byte 16: root Pair segment
// at 16 (u32 size prefix, u32 type id, one u64 per field), Node at
// 48, int[3] at 72 (prefix, type id, u64 count, packed elements),
// Node at 100; the name table follows at 124. References encode the
// target's region-relative prefix offset as (rel << 1) | 1.

TEST_F(DecodeErrors, HpsUnknownTypeIdIsBadClass)
{
    Bytes b = golden("hps");
    b[20] = 0xff; // root segment's type id: 0 -> 255, table has 3
    expectStatus("hps", b, DecodeStatus::BadClass);
}

TEST_F(DecodeErrors, HpsHugeSegmentSizeIsBadLength)
{
    Bytes b = golden("hps");
    std::fill(b.begin() + 16, b.begin() + 20, 0xff); // root's prefix
    expectStatus("hps", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, HpsHugeArrayCountIsBadLength)
{
    Bytes b = golden("hps");
    // The int[3] segment's u64 count at 80: the count must agree with
    // the segment size, which cannot hold more than three elements.
    std::fill(b.begin() + 80, b.begin() + 88, 0xff);
    expectStatus("hps", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, HpsMidSegmentReferenceIsBadHandle)
{
    Bytes b = golden("hps");
    ASSERT_EQ(b[24], 0x41); // root's field `a`: tagged rel offset 32
    b[24] = 0x11;           // tagged rel offset 8: inside a segment
    expectStatus("hps", b, DecodeStatus::BadHandle);
}

TEST_F(DecodeErrors, HpsUntaggedReferenceIsMalformed)
{
    Bytes b = golden("hps");
    ASSERT_EQ(b[24], 0x41);
    b[24] = 0x40; // non-null but tag bit clear
    expectStatus("hps", b, DecodeStatus::Malformed);
}

TEST_F(DecodeErrors, HpsSegmentCountMismatchIsMalformed)
{
    Bytes b = golden("hps");
    ASSERT_EQ(b[4], 4); // header claims four segments
    b[4] = 5;           // region only carries four
    expectStatus("hps", b, DecodeStatus::Malformed);
}

TEST_F(DecodeErrors, HpsHugeDataRegionIsBadLength)
{
    Bytes b = golden("hps");
    std::fill(b.begin() + 8, b.begin() + 16, 0xff); // u64 region size
    expectStatus("hps", b, DecodeStatus::BadLength);
}

TEST_F(DecodeErrors, HpsInstanceSizeMismatchIsMalformed)
{
    Bytes b = golden("hps");
    ASSERT_EQ(b[16], 0x1c); // root Pair: 4 type id + 3 fields * 8
    b[16] = 0x1b;           // one byte short of the schema's size
    expectStatus("hps", b, DecodeStatus::Malformed);
}

// ---------------------------------------------------------------------
// Truncation sweep
// ---------------------------------------------------------------------

TEST(TruncationSweep, EveryProperPrefixFailsCleanly)
{
    DecoderFuzzer fuzzer;
    for (const auto &entry : fuzzer.corpus()) {
        if (entry.format == "cluster") {
            // The partition-frame codec has no heap; sweep it through
            // its own non-throwing decoder.
            for (std::size_t n = 0; n < entry.bytes.size(); ++n) {
                Bytes prefix(entry.bytes.begin(),
                             entry.bytes.begin() +
                                 static_cast<std::ptrdiff_t>(n));
                EXPECT_FALSE(tryDecodeFrame(prefix).ok())
                    << entry.format << ": prefix of " << n << "/"
                    << entry.bytes.size()
                    << " bytes decoded successfully";
            }
            EXPECT_TRUE(tryDecodeFrame(entry.bytes).ok())
                << entry.format;
            continue;
        }
        auto &ser = fuzzer.serializer(entry.format);
        for (std::size_t n = 0; n < entry.bytes.size(); ++n) {
            Bytes prefix(entry.bytes.begin(),
                         entry.bytes.begin() +
                             static_cast<std::ptrdiff_t>(n));
            Heap dst(fuzzer.registry(), kTestHeapBase);
            auto res = ser.tryDeserialize(prefix, dst);
            EXPECT_FALSE(res.ok())
                << entry.format << ": prefix of " << n << "/"
                << entry.bytes.size() << " bytes decoded successfully";
        }
        // Sanity: the whole stream still decodes.
        Heap dst(fuzzer.registry(), kTestHeapBase);
        EXPECT_TRUE(ser.tryDeserialize(entry.bytes, dst).ok())
            << entry.format;
    }
}

// ---------------------------------------------------------------------
// Committed corpus regression replay
// ---------------------------------------------------------------------

TEST(FuzzCorpus, CommittedCorpusReplaysWithoutViolations)
{
    DecoderFuzzer fuzzer;
    auto extra = loadCorpusDir(CEREAL_CORPUS_DIR);
    EXPECT_GE(extra.size(), 24u)
        << "tests/corpus is missing committed regression entries";
    fuzzer.addCorpus(std::move(extra));

    auto stats = fuzzer.replayCorpus();
    for (const auto &f : stats.findings) {
        ADD_FAILURE() << f.kind << " on " << f.format << " decoder, "
                      << "corpus entry " << f.seedName << ": "
                      << f.detail;
    }
    // The seven golden seeds (six serializers + the partition frame)
    // decode with their own decoder (and any corpus entry a fix
    // turned valid again); everything else errors.
    EXPECT_GE(stats.decodeOk, 7u);
    EXPECT_GT(stats.decodeError, 0u);
    EXPECT_EQ(stats.roundTrips, stats.decodeOk);
    // The corpus pins a spread of error classes, not one.
    EXPECT_GE(stats.byStatus.size(), 5u);
}

} // namespace
} // namespace cereal
