/**
 * @file
 * Tests of the src/fuzz subsystem itself, plus the seeded fuzz
 * acceptance run: 10k mutation iterations over every decoder (the four
 * serializers plus the cluster partition-frame codec) must produce
 * zero contract violations (no aborts, no non-DecodeError exceptions,
 * every accepted stream survives the round-trip oracle).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hh"
#include "fuzz/mutator.hh"
#include "sim/rng.hh"

namespace cereal {
namespace {

TEST(Mutator, DeterministicGivenRngState)
{
    DecoderFuzzer fuzzer;
    std::vector<std::vector<std::uint8_t>> pool;
    for (const auto &e : fuzzer.corpus()) {
        pool.push_back(e.bytes);
    }
    const auto &input = fuzzer.corpus()[0].bytes;

    Rng a(1234), b(1234);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(mutate(input, a, 4, pool), mutate(input, b, 4, pool))
            << "mutation " << i << " diverged for equal Rng streams";
    }
}

TEST(Mutator, HandlesEmptyInputAndEmptyPool)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        auto out = mutate({}, rng, 4, {});
        // Only extend() can grow an empty input; everything else must
        // cope with it without touching memory.
        EXPECT_LE(out.size(), 16u * 4u);
    }
}

TEST(Corpus, SeedCorpusCoversAllFormats)
{
    DecoderFuzzer fuzzer;
    ASSERT_EQ(fuzzer.corpus().size(), DecoderFuzzer::formats().size());
    for (const auto &format : DecoderFuzzer::formats()) {
        bool found = false;
        for (const auto &e : fuzzer.corpus()) {
            found = found || e.format == format;
        }
        EXPECT_TRUE(found) << "no seed entry for " << format;
    }
}

TEST(Corpus, SaveAndLoadRoundTrip)
{
    const std::string dir = ::testing::TempDir() + "corpus_rt";
    CorpusEntry e{"kryo_saved", "kryo", {1, 2, 3, 0xff, 0}};
    saveCorpusEntry(dir, e);
    auto loaded = loadCorpusDir(dir);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].name, "kryo_saved");
    EXPECT_EQ(loaded[0].format, "kryo"); // inferred from the prefix
    EXPECT_EQ(loaded[0].bytes, e.bytes);
}

TEST(Corpus, MissingDirectoryYieldsEmptyCorpus)
{
    EXPECT_TRUE(loadCorpusDir("/nonexistent/fuzz/corpus").empty());
}

TEST(FuzzRun, DeterministicGivenSeed)
{
    FuzzConfig cfg;
    cfg.seed = 99;
    cfg.iterations = 500;

    DecoderFuzzer f1, f2;
    auto s1 = f1.run(cfg);
    auto s2 = f2.run(cfg);
    EXPECT_EQ(s1.attempts, s2.attempts);
    EXPECT_EQ(s1.decodeOk, s2.decodeOk);
    EXPECT_EQ(s1.decodeError, s2.decodeError);
    EXPECT_EQ(s1.roundTrips, s2.roundTrips);
    EXPECT_EQ(s1.byStatus, s2.byStatus);
    EXPECT_EQ(s1.findings.size(), s2.findings.size());
}

/** The acceptance gate: 10k seeded iterations, every decoder. */
TEST(FuzzRun, TenThousandIterationsUpholdDecodeContract)
{
    FuzzConfig cfg;
    cfg.seed = 0xCE4EA1;
    cfg.iterations = 10000;

    DecoderFuzzer fuzzer;
    auto stats = fuzzer.run(cfg);

    for (const auto &f : stats.findings) {
        ADD_FAILURE() << f.kind << " in " << f.format
                      << " decoder (seed entry " << f.seedName
                      << ", iteration " << f.iteration
                      << "): " << f.detail;
    }
    EXPECT_EQ(stats.iterations, cfg.iterations);
    EXPECT_EQ(stats.attempts,
              cfg.iterations * DecoderFuzzer::formats().size());
    // The run must exercise both sides of the contract: some mutants
    // decode (and then round-trip), most die with a typed error.
    EXPECT_GT(stats.decodeOk, 0u);
    EXPECT_GT(stats.decodeError, 0u);
    EXPECT_EQ(stats.roundTrips, stats.decodeOk);
    // Mutation reaches a spread of error classes, not just bad magic.
    EXPECT_GE(stats.byStatus.size(), 5u);
}

} // namespace
} // namespace cereal
