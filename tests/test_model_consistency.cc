/**
 * @file
 * Cross-model consistency properties: the accelerator timing models
 * replay the same traversal/stream structure the functional serializer
 * produces, so their structural counters must agree exactly — for any
 * workload shape.
 */

#include <gtest/gtest.h>

#include "cereal/accel/du.hh"
#include "cereal/accel/su.hh"
#include "cereal/cereal_serializer.hh"
#include "heap/walker.hh"
#include "workloads/jsbs.hh"
#include "workloads/micro.hh"
#include "workloads/spark.hh"

namespace cereal {
namespace {

using workloads::MicroBench;
using workloads::MicroWorkloads;

class Consistency : public ::testing::TestWithParam<MicroBench>
{
};

TEST_P(Consistency, SuCountersMatchFunctionalSerializer)
{
    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, GetParam(), 512, 3);

    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);

    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    SerializationUnit su(mai, AccelConfig());
    auto r = su.serialize(src, root, 0, 0x100'0000'0000ULL);

    // Same objects visited.
    EXPECT_EQ(r.objects, stream.objectCount);
    // SU ref count = stream ref entries + 1 (the root arrives at the
    // HM as a reference but occupies no reference slot).
    EXPECT_EQ(r.refs, stream.refEntries + 1);
    // The SU must read at least every byte of every object plus one
    // visited check per reference.
    auto gs = GraphWalker(src).stats(root);
    EXPECT_GE(r.bytesRead, gs.totalBytes);
    // The SU's stream output volume tracks the functional stream's
    // (packed sizes computed independently; equal by construction).
    EXPECT_NEAR(static_cast<double>(r.bytesWritten),
                static_cast<double>(stream.serializedBytes()),
                static_cast<double>(stream.serializedBytes()) * 0.05 +
                    64);
}

TEST_P(Consistency, DuBlocksCoverExactImage)
{
    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, GetParam(), 512, 3);

    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);

    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    DeserializationUnit du(mai, AccelConfig());
    auto r = du.deserialize(stream, 0x100'0000'0000ULL,
                            0x9'0000'0000ULL, 0);

    EXPECT_EQ(r.blocks, (stream.totalGraphBytes + 63) / 64);
    EXPECT_EQ(r.bytesWritten, stream.totalGraphBytes);
    // The DU streams exactly the serialized input (sans the 4 B size
    // word held in a register).
    EXPECT_EQ(r.bytesRead, stream.serializedBytes() - 4);
}

TEST_P(Consistency, TimingInvariants)
{
    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, GetParam(), 1024, 5);

    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);

    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    AccelConfig cfg;
    SerializationUnit su(mai, cfg);

    const Tick start = 12345678;
    auto r = su.serialize(src, root, start, 0x100'0000'0000ULL);
    EXPECT_GT(r.done, start);

    // A physical lower bound: moving bytesRead+bytesWritten through
    // DRAM cannot beat the peak-bandwidth time.
    double min_seconds =
        static_cast<double>(r.bytesRead + r.bytesWritten) /
        dram.config().peakBandwidth();
    EXPECT_GE(ticksToSeconds(r.done - start), min_seconds * 0.9);

    EventQueue eq2;
    Dram dram2("dram2", eq2);
    Mai mai2(dram2, 64);
    DeserializationUnit du(mai2, cfg);
    auto d = du.deserialize(stream, 0x100'0000'0000ULL,
                            0x9'0000'0000ULL, start);
    double d_min =
        static_cast<double>(d.bytesRead + d.bytesWritten) /
        dram2.config().peakBandwidth();
    EXPECT_GE(ticksToSeconds(d.done - start), d_min * 0.9);
}

TEST_P(Consistency, DeterministicTiming)
{
    KlassRegistry reg;
    MicroWorkloads micro(reg);
    Heap src(reg);
    Addr root = micro.build(src, GetParam(), 1024, 5);

    auto run = [&]() {
        EventQueue eq;
        Dram dram("dram", eq);
        Mai mai(dram, 64);
        SerializationUnit su(mai, AccelConfig());
        return su.serialize(src, root, 0, 0x100'0000'0000ULL).done;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, Consistency,
    ::testing::ValuesIn(workloads::allMicroBenches()),
    [](const auto &info) {
        std::string n = workloads::microBenchName(info.param);
        for (auto &c : n) {
            if (c == '-') {
                c = '_';
            }
        }
        return n;
    });

TEST(ConsistencyExtra, JsbsAndSparkShapes)
{
    KlassRegistry reg;
    workloads::JsbsWorkload jsbs(reg);
    workloads::SparkWorkloads spark(reg);

    Addr base = 0x1'0000'0000ULL;
    std::vector<Addr> roots;
    {
        Heap h(reg, base);
        roots.clear();
        Addr mc = jsbs.buildMediaContent(h, 1);
        CerealSerializer ser;
        ser.registerAll(reg);
        auto stream = ser.serializeToStream(h, mc);
        EventQueue eq;
        Dram dram("d", eq);
        Mai mai(dram, 64);
        SerializationUnit su(mai, AccelConfig());
        auto r = su.serialize(h, mc, 0, 0x100'0000'0000ULL);
        EXPECT_EQ(r.objects, stream.objectCount);
        EXPECT_EQ(r.refs, stream.refEntries + 1);
    }
    for (const auto &spec : workloads::sparkApps()) {
        Heap h(reg, base += 0x10'0000'0000ULL);
        Addr root = spark.build(h, spec.name, 512, 2);
        CerealSerializer ser;
        ser.registerAll(reg);
        auto stream = ser.serializeToStream(h, root);
        EventQueue eq;
        Dram dram("d", eq);
        Mai mai(dram, 64);
        SerializationUnit su(mai, AccelConfig());
        auto r = su.serialize(h, root, 0, 0x100'0000'0000ULL);
        EXPECT_EQ(r.objects, stream.objectCount) << spec.name;
        EXPECT_EQ(r.refs, stream.refEntries + 1) << spec.name;
    }
}

} // namespace
} // namespace cereal
