/**
 * @file
 * Tests for the Cereal serialization format: the object-packing scheme
 * (property tests over random values/bit strings), stream
 * encode/decode, and full functional round trips including the
 * header-strip variant and visited-counter wrap behaviour.
 */

#include <gtest/gtest.h>

#include "cereal/cereal_serializer.hh"
#include "cereal/format.hh"
#include "heap/object.hh"
#include "heap/walker.hh"
#include "sim/rng.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using workloads::MicroBench;
using workloads::MicroWorkloads;

TEST(ObjectPacker, SingleSmallValue)
{
    ObjectPacker p;
    p.packValue(5); // '101' + marker -> 1 byte
    EXPECT_EQ(p.buckets().size(), 1u);
    EXPECT_EQ(p.entries(), 1u);
    ObjectUnpacker u(p.buckets(), p.endMap());
    EXPECT_EQ(u.nextValue(), 5u);
    EXPECT_TRUE(u.done());
}

TEST(ObjectPacker, ZeroTakesOneBucket)
{
    ObjectPacker p;
    p.packValue(0); // just the marker
    EXPECT_EQ(p.buckets().size(), 1u);
    ObjectUnpacker u(p.buckets(), p.endMap());
    EXPECT_EQ(u.nextValue(), 0u);
}

TEST(ObjectPacker, PaperExampleCompression)
{
    // Packing drops leading zeros: four small references that would
    // take 32 B raw fit in a few buckets (Figure 5's point).
    ObjectPacker p;
    for (std::uint64_t v : {0x08u, 0x10u, 0x18u, 0x28u}) {
        p.packValue(v);
    }
    EXPECT_EQ(p.buckets().size(), 4u);   // 1 byte each
    EXPECT_EQ(p.endMap().size(), 1u);    // 4 end bits in one byte
    EXPECT_LT(p.packedBytes(), 4u * 8u); // far below 8 B/ref
}

TEST(ObjectPacker, MultiBucketValue)
{
    ObjectPacker p;
    p.packValue(0x1234567890ULL); // 37 significant bits + marker -> 5 B
    EXPECT_EQ(p.buckets().size(), 5u);
    ObjectUnpacker u(p.buckets(), p.endMap());
    EXPECT_EQ(u.nextValue(), 0x1234567890ULL);
}

TEST(ObjectPacker, MaxValueRoundTrips)
{
    ObjectPacker p;
    p.packValue(~0ULL);
    ObjectUnpacker u(p.buckets(), p.endMap());
    EXPECT_EQ(u.nextValue(), ~0ULL);
}

TEST(ObjectPacker, ValueSequenceProperty)
{
    // Property: any sequence of values round-trips in order.
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        ObjectPacker p;
        std::vector<std::uint64_t> vals;
        const int n = 1 + static_cast<int>(rng.below(200));
        for (int i = 0; i < n; ++i) {
            // Mix magnitudes: mostly small (realistic rel addrs), some
            // huge.
            std::uint64_t v = rng.chance(0.1)
                                  ? rng.next()
                                  : rng.below(1 << 20);
            vals.push_back(v);
            p.packValue(v);
        }
        ObjectUnpacker u(p.buckets(), p.endMap());
        for (std::uint64_t v : vals) {
            ASSERT_EQ(u.nextValue(), v);
        }
        EXPECT_TRUE(u.done());
    }
}

TEST(ObjectPacker, BitStringPreservesLeadingZeros)
{
    // Bitmaps start with header zeros; they must survive packing.
    std::vector<bool> bm = {false, false, false, true, false, true};
    ObjectPacker p;
    p.packBits(bm);
    ObjectUnpacker u(p.buckets(), p.endMap());
    EXPECT_EQ(u.nextBits(), bm);
}

TEST(ObjectPacker, BitStringSequenceProperty)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        ObjectPacker p;
        std::vector<std::vector<bool>> all;
        const int n = 1 + static_cast<int>(rng.below(60));
        for (int i = 0; i < n; ++i) {
            std::vector<bool> bits;
            const int len = static_cast<int>(rng.below(70));
            for (int b = 0; b < len; ++b) {
                bits.push_back(rng.chance(0.3));
            }
            all.push_back(bits);
            p.packBits(bits);
        }
        ObjectUnpacker u(p.buckets(), p.endMap());
        for (const auto &bits : all) {
            ASSERT_EQ(u.nextBits(), bits);
        }
        EXPECT_TRUE(u.done());
    }
}

TEST(ObjectPacker, EndMapSizeIsBucketCountOverEight)
{
    ObjectPacker p;
    for (int i = 0; i < 100; ++i) {
        p.packValue(static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(p.endMap().size(), (p.buckets().size() + 7) / 8);
}

TEST(RelRefEncoding, NullAndValuesDistinct)
{
    EXPECT_EQ(kNullRefToken, 0u);
    EXPECT_EQ(encodeRelRef(0), 1u);
    EXPECT_EQ(decodeRelRef(encodeRelRef(0)), 0u);
    EXPECT_EQ(decodeRelRef(encodeRelRef(0x1238)), 0x1238u);
}

TEST(CerealStreamCodec, EncodeDecodeRoundTrip)
{
    CerealStream s;
    s.valueArray = {1, 2, 3, 0xdeadbeef};
    s.refBuckets = {0xaa, 0xbb};
    s.refEndMap = {0x3};
    s.bitmapBuckets = {0x17};
    s.bitmapEndMap = {0x1};
    s.totalGraphBytes = 96;
    s.objectCount = 2;
    s.refEntries = 2;
    s.bitmapBits = 12;
    s.headerStripped = true;

    auto bytes = s.encode();
    CerealStream d = CerealStream::decode(bytes);
    EXPECT_EQ(d.valueArray, s.valueArray);
    EXPECT_EQ(d.refBuckets, s.refBuckets);
    EXPECT_EQ(d.refEndMap, s.refEndMap);
    EXPECT_EQ(d.bitmapBuckets, s.bitmapBuckets);
    EXPECT_EQ(d.bitmapEndMap, s.bitmapEndMap);
    EXPECT_EQ(d.totalGraphBytes, 96u);
    EXPECT_EQ(d.objectCount, 2u);
    EXPECT_EQ(d.refEntries, 2u);
    EXPECT_EQ(d.bitmapBits, 12u);
    EXPECT_TRUE(d.headerStripped);
}

class CerealRoundTrip : public ::testing::Test
{
  protected:
    CerealRoundTrip() : micro(reg), src(reg), dst(reg, 0x9'0000'0000ULL)
    {
        ser.registerAll(reg);
    }

    void
    check(Addr root)
    {
        auto stream = ser.serialize(src, root);
        Addr nr = ser.deserialize(stream, dst);
        std::string why;
        EXPECT_TRUE(graphEquals(src, root, dst, nr, &why)) << why;
    }

    KlassRegistry reg;
    MicroWorkloads micro;
    Heap src, dst;
    CerealSerializer ser;
};

TEST_F(CerealRoundTrip, AllMicrobenchShapes)
{
    for (auto mb : workloads::allMicroBenches()) {
        Heap s(reg, 0x40'0000'0000ULL +
                        0x2'0000'0000ULL * static_cast<Addr>(mb));
        Heap d(reg, 0x60'0000'0000ULL +
                        0x2'0000'0000ULL * static_cast<Addr>(mb));
        Addr root = micro.build(s, mb, 2048, 7);
        auto stream = ser.serialize(s, root);
        Addr nr = ser.deserialize(stream, d);
        std::string why;
        EXPECT_TRUE(graphEquals(s, root, d, nr, &why))
            << workloads::microBenchName(mb) << ": " << why;
    }
}

TEST_F(CerealRoundTrip, IdentityHashPreservedWithoutStrip)
{
    Rng rng(5);
    Addr root = micro.buildList(src, 5, rng);
    auto stream = ser.serialize(src, root);
    Addr nr = ser.deserialize(stream, dst);
    std::string why;
    EXPECT_TRUE(graphEquals(src, root, dst, nr, &why,
                            /*compare_identity_hash=*/true))
        << why;
}

TEST_F(CerealRoundTrip, HeaderStripRegeneratesHashes)
{
    CerealSerializer strip_ser(CerealOptions{/*headerStrip=*/true});
    strip_ser.registerAll(reg);
    Rng rng(5);
    Addr root = micro.buildList(src, 20, rng);
    auto plain = ser.serialize(src, root);
    auto stripped = strip_ser.serialize(src, root);
    EXPECT_LT(stripped.size(), plain.size());
    // Graph structure still round-trips (hashes excluded).
    Addr nr = strip_ser.deserialize(stripped, dst);
    std::string why;
    EXPECT_TRUE(graphEquals(src, root, dst, nr, &why)) << why;
}

TEST_F(CerealRoundTrip, SharedObjectsAndCycles)
{
    KlassId holder = reg.add("H", {{"a", FieldType::Reference},
                                   {"b", FieldType::Reference}});
    ser.registerClass(holder);
    Addr a = src.allocateInstance(holder);
    Addr b = src.allocateInstance(holder);
    ObjectView(src, a).setRef(0, b);
    ObjectView(src, a).setRef(1, b); // shared
    ObjectView(src, b).setRef(0, a); // cycle
    check(a);
}

TEST_F(CerealRoundTrip, RepeatedSerializationsUseCounter)
{
    // The visited counter must distinguish runs without clearing.
    Rng rng(5);
    Addr root = micro.buildList(src, 10, rng);
    for (int i = 0; i < 5; ++i) {
        Heap d(reg, 0x70'0000'0000ULL + 0x1'0000'0000ULL *
                                            static_cast<Addr>(i));
        auto stream = ser.serialize(src, root);
        Addr nr = ser.deserialize(stream, d);
        std::string why;
        ASSERT_TRUE(graphEquals(src, root, d, nr, &why)) << why;
    }
}

TEST_F(CerealRoundTrip, TotalGraphBytesMatchesWalkerStats)
{
    Rng rng(5);
    Addr root = micro.buildTree(src, 2, 63, rng);
    auto s = ser.serializeToStream(src, root);
    auto gs = GraphWalker(src).stats(root);
    EXPECT_EQ(s.totalGraphBytes, gs.totalBytes);
    EXPECT_EQ(s.objectCount, gs.objectCount);
}

TEST_F(CerealRoundTrip, RefEntriesCountEveryReferenceSlot)
{
    KlassId holder = reg.add("H2", {{"a", FieldType::Reference},
                                    {"b", FieldType::Reference}});
    ser.registerClass(holder);
    Addr a = src.allocateInstance(holder); // two null refs
    auto s = ser.serializeToStream(src, a);
    EXPECT_EQ(s.refEntries, 2u);
    EXPECT_EQ(s.objectCount, 1u);
}

TEST_F(CerealRoundTrip, GraphPackingBeatsBaselineFormat)
{
    // Reference-heavy graphs are where packing pays (Table IV).
    Rng rng(11);
    Addr root = micro.buildGraph(src, 128, 127, rng);
    auto s = ser.serializeToStream(src, root);
    EXPECT_LT(s.serializedBytes(), s.baselineBytes() / 2);
}

TEST_F(CerealRoundTrip, UnregisteredClassIsFatal)
{
    KlassId secret = reg.add("Secret", {{"v", FieldType::Long}});
    Addr o = src.allocateInstance(secret);
    CerealSerializer fresh; // nothing registered
    EXPECT_DEATH(fresh.serialize(src, o), "not registered");
}

TEST_F(CerealRoundTrip, DeserializedObjectsNotedInHeap)
{
    Rng rng(5);
    Addr root = micro.buildList(src, 8, rng);
    auto stream = ser.serialize(src, root);
    EXPECT_EQ(dst.objectCount(), 0u);
    ser.deserialize(stream, dst);
    EXPECT_EQ(dst.objectCount(), 8u);
}

} // namespace
} // namespace cereal
