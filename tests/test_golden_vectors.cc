/**
 * @file
 * Golden-vector tests: each serializer's byte stream for a small fixed
 * object graph is pinned exactly. Any change to a wire format —
 * intentional or not — fails here first, with the actual bytes printed
 * so the vector can be regenerated deliberately.
 *
 * The graph covers the format-relevant features in minimal form: two
 * instance klasses, a long/int field mix, a reference cycle, a shared
 * object, and a primitive array.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "heap/object.hh"
#include "heap/walker.hh"
#include "serde/registry.hh"

namespace cereal {
namespace {

/**
 * The pinned graph. Registration order and every field value are part
 * of the contract: changing any of them invalidates the vectors.
 */
Addr
buildGoldenGraph(KlassRegistry &reg, Heap &heap)
{
    KlassId node = reg.add("Node", {{"value", FieldType::Long},
                                    {"next", FieldType::Reference}});
    KlassId pair = reg.add("Pair", {{"a", FieldType::Reference},
                                    {"b", FieldType::Reference},
                                    {"tag", FieldType::Int}});
    reg.arrayKlass(FieldType::Int);

    Addr n1 = heap.allocateInstance(node);
    Addr n2 = heap.allocateInstance(node);
    ObjectView v1(heap, n1), v2(heap, n2);
    v1.setLong(0, 0x1122334455667788LL);
    v1.setRef(1, n2);
    v2.setLong(0, -1);
    v2.setRef(1, n1); // cycle

    Addr arr = heap.allocateArray(FieldType::Int, 3);
    ObjectView av(heap, arr);
    av.setElem(0, 1);
    av.setElem(1, 2);
    av.setElem(2, 3);

    Addr root = heap.allocateInstance(pair);
    ObjectView rv(heap, root);
    rv.setRef(0, n1);
    rv.setRef(1, arr);
    rv.setInt(2, 0x7f);
    return root;
}

std::string
toHex(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xf]);
    }
    return s;
}

// Golden vectors. Regenerate by running the failing test: it prints
// the actual hex stream on mismatch.
// java: 124 bytes
constexpr const char *kJava =
    "0500edac73720400506169720003004c0100614c010062490300746167010000"
    "00020000007f000000737204004e6f64650002004a050076616c75654c04006e"
    "65787488776655443322110300000075720500696e745b5d0149030000000100"
    "00000200000003000000737101000000ffffffffffffffff01000000";
// kryo: 52 bytes
constexpr const char *kKryo =
    "4f59524b01000000010203fe01000000000190deb3d68ad199a2220402000000"
    "0301000000020000000300000000000000010102";
// skyway: 211 bytes
constexpr const char *kSkyway =
    "57594b53b000000000000000eaf9e95d00000000000000000000000000000000"
    "000000006100000000000000b1000000000000007f0000000000000067452301"
    "0000000001000000000000000000000000000000887766554433221111010000"
    "00000000b9d96c1b000000000200000000000000000000000000000003000000"
    "000000000100000002000000030000000000000038ab51700000000001000000"
    "000000000000000000000000ffffffffffffffff610000000000000003000000"
    "04005061697204004e6f64650500696e745b5d";
// cereal: 223 bytes
constexpr const char *kCereal =
    "4c45524304000000b00000000012000000000000000400000000000000010000"
    "0000000000040000000000000001000000000000000400000000000000160000"
    "0000000000eaf9e95d00000000010000000000000000000000000000007f0000"
    "0000000000674523010000000000000000000000000000000000000000887766"
    "5544332211b9d96c1b0000000002000000000000000000000000000000030000"
    "00000000000100000002000000030000000000000038ab517000000000000000"
    "00000000000000000000000000ffffffffffffffff0f1c320f0f462140210f";
// plaincode: 45 bytes
constexpr const char *kPlaincode =
    "504c43310102037f000000008877665544332211040203010000000200000003"
    "00000000ffffffffffffffff02";
// hps: 147 bytes
constexpr const char *kHps =
    "48505331040000006c000000000000001c000000000000004100000000000000"
    "71000000000000007f0000000000000014000000010000008877665544332211"
    "a900000000000000180000000200000003000000000000000100000002000000"
    "030000001400000001000000ffffffffffffffff410000000000000003000000"
    "04005061697204004e6f64650500696e745b5d";

struct GoldenCase
{
    std::string name;
    const char *hex;
};

class GoldenVectors : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenVectors, StreamBytesAreExact)
{
    KlassRegistry reg;
    Heap heap(reg, 0x1'0000'0000ULL);
    Addr root = buildGoldenGraph(reg, heap);
    auto ser = serde::makeSerializer(GetParam().name, &reg);
    auto bytes = ser->serialize(heap, root);
    if (std::getenv("CEREAL_UPDATE_GOLDEN") != nullptr) {
        // Regen mode: print a paste-ready vector instead of failing.
        std::string hex = toHex(bytes);
        std::printf("// %s: %zu bytes\n", GetParam().name.c_str(),
                    bytes.size());
        for (std::size_t i = 0; i < hex.size(); i += 64) {
            std::printf("    \"%s\"%s\n", hex.substr(i, 64).c_str(),
                        i + 64 < hex.size() ? "" : ";");
        }
        return;
    }
    EXPECT_EQ(toHex(bytes), GetParam().hex)
        << GetParam().name
        << " wire format changed; if intentional, update the vector "
           "with the actual hex above (or rerun with "
           "CEREAL_UPDATE_GOLDEN=1 for a paste-ready block)";
}

TEST_P(GoldenVectors, GoldenBytesDeserializeIsomorphically)
{
    // The pinned bytes must stay readable: decode the golden vector
    // (not a fresh serialization) and compare against the live graph.
    const char *hex = GetParam().hex;
    std::vector<std::uint8_t> bytes;
    for (const char *p = hex; p[0] && p[1]; p += 2) {
        auto nib = [](char c) {
            return static_cast<std::uint8_t>(
                c <= '9' ? c - '0' : c - 'a' + 10);
        };
        bytes.push_back(
            static_cast<std::uint8_t>(nib(p[0]) << 4 | nib(p[1])));
    }

    KlassRegistry reg;
    Heap heap(reg, 0x1'0000'0000ULL);
    Addr root = buildGoldenGraph(reg, heap);
    auto ser = serde::makeSerializer(GetParam().name, &reg);
    Heap dst(reg, 0x9'0000'0000ULL);
    Addr nr = ser->deserialize(bytes, dst);
    std::string why;
    EXPECT_TRUE(graphEquals(heap, root, dst, nr, &why))
        << GetParam().name << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(
    AllSerializers, GoldenVectors,
    ::testing::Values(GoldenCase{"java", kJava}, GoldenCase{"kryo", kKryo},
                      GoldenCase{"skyway", kSkyway},
                      GoldenCase{"cereal", kCereal},
                      GoldenCase{"plaincode", kPlaincode},
                      GoldenCase{"hps", kHps}),
    [](const auto &info) { return info.param.name; });

// The registry must agree with the vector list above: a backend added
// there without a pinned vector here is a silent coverage hole.
TEST(GoldenVectors, EveryRegisteredBackendHasAVector)
{
    EXPECT_EQ(serde::backends().size(), 6u);
}

} // namespace
} // namespace cereal
