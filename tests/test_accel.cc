/**
 * @file
 * Tests for the Cereal accelerator timing model: MAI window and
 * coalescing, TLB, SU/DU pipeline behaviour (including the Vanilla
 * ablation), device scheduling, the area/power model against Table V,
 * and the full API (Initialize/RegisterClass/WriteObject/ReadObject).
 */

#include <gtest/gtest.h>

#include "cereal/api.hh"
#include "cereal/area_power.hh"
#include "heap/object.hh"
#include "heap/walker.hh"
#include "workloads/micro.hh"

namespace cereal {
namespace {

using workloads::MicroBench;
using workloads::MicroWorkloads;

class AccelFixture : public ::testing::Test
{
  protected:
    AccelFixture()
        : dram("dram", eq), micro(reg), src(reg),
          dst(reg, 0x9'0000'0000ULL)
    {
    }

    EventQueue eq;
    Dram dram;
    KlassRegistry reg;
    MicroWorkloads micro;
    Heap src, dst;
};

TEST(MaiTest, WindowLimitsOutstanding)
{
    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai_small(dram, 2);
    // With 2 entries, the 10th random read must start far later than
    // with 64 entries.
    EventQueue eq2;
    Dram dram2("dram2", eq2);
    Mai mai_big(dram2, 64);
    Tick small_done = 0, big_done = 0;
    for (int i = 0; i < 32; ++i) {
        Addr a = static_cast<Addr>(i) * 1'000'000; // all row misses
        small_done = std::max(small_done, mai_small.read(a, 8, 0));
        big_done = std::max(big_done, mai_big.read(a, 8, 0));
    }
    EXPECT_GT(small_done, big_done);
}

TEST(MaiTest, CoalescesSameBlockReads)
{
    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    Tick t1 = mai.read(0x1000, 8, 0);
    Tick t2 = mai.read(0x1008, 8, 0); // same 64 B block, in flight
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(mai.coalescedHits(), 1u);
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(MaiTest, LineBufferServesRecentBlocks)
{
    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    Tick t1 = mai.read(0x1000, 8, 0);
    // Issue after t1: the in-flight entry retired, but the block still
    // sits in the MAI's 4 KB data buffer — no second DRAM access.
    Tick t2 = mai.read(0x1008, 8, t1 + 1);
    EXPECT_EQ(mai.coalescedHits(), 1u);
    EXPECT_EQ(dram.accesses(), 1u);
    EXPECT_EQ(t2, t1 + 1);
}

TEST(MaiTest, LineBufferEvictsFifo)
{
    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 2); // 2-entry buffer
    Tick t = mai.read(0x0000, 8, 0);
    t = std::max(t, mai.read(0x1000, 8, t));
    t = std::max(t, mai.read(0x2000, 8, t)); // evicts block 0x0000
    auto before = dram.accesses();
    mai.read(0x0000, 8, t + 1);
    EXPECT_EQ(dram.accesses(), before + 1); // real access again
}

TEST(MaiTest, MultiBurstRead)
{
    EventQueue eq;
    Dram dram("dram", eq);
    Mai mai(dram, 64);
    mai.read(0, 256, 0);
    EXPECT_EQ(dram.accesses(), 4u);
}

TEST(TlbTest, HitAfterFill)
{
    Tlb tlb(4, Addr{1} << 30, 100);
    EXPECT_GT(tlb.lookup(0x1234), 0u);
    EXPECT_EQ(tlb.lookup(0x9999), 0u); // same 1 GB page
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEviction)
{
    Tlb tlb(2, 4096, 50);
    tlb.lookup(0 << 12);
    tlb.lookup(1 << 12);
    tlb.lookup(2 << 12);               // evicts page 0
    EXPECT_GT(tlb.lookup(0 << 12), 0u); // miss again
}

TEST_F(AccelFixture, SuCompletesAndCountsObjects)
{
    Rng rng(1);
    Addr root = micro.buildTree(src, 2, 255, rng);
    Mai mai(dram, 64);
    SerializationUnit su(mai, AccelConfig());
    auto r = su.serialize(src, root, 1000, 0x100'0000'0000ULL);
    EXPECT_EQ(r.objects, 255u);
    // Every tree node's two child refs pass the HM, plus the root.
    EXPECT_GE(r.refs, 255u);
    EXPECT_GT(r.done, 1000u);
    EXPECT_GT(r.bytesRead, 255u * 48);
    EXPECT_GT(r.metadataCacheHits, 200u); // one class, hot
}

TEST_F(AccelFixture, SuPipeliningBeatsVanilla)
{
    Rng rng(2);
    Addr root = micro.buildTree(src, 8, 4096, rng);

    EventQueue eq_a;
    Dram dram_a("a", eq_a);
    Mai mai_a(dram_a, 64);
    AccelConfig piped;
    SerializationUnit su_piped(mai_a, piped);
    Tick t_piped =
        su_piped.serialize(src, root, 0, 0x100'0000'0000ULL).done;

    EventQueue eq_b;
    Dram dram_b("b", eq_b);
    Mai mai_b(dram_b, 64);
    AccelConfig vanilla;
    vanilla.pipelined = false;
    SerializationUnit su_van(mai_b, vanilla);
    Tick t_van = su_van.serialize(src, root, 0, 0x100'0000'0000ULL).done;

    EXPECT_LT(t_piped, t_van);
}

TEST_F(AccelFixture, DuReconstructorCountMatters)
{
    Rng rng(3);
    Addr root = micro.buildGraph(src, 512, 64, rng);
    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);

    auto run = [&](unsigned recons) {
        EventQueue eq2;
        Dram d2("d", eq2);
        Mai mai(d2, 64);
        AccelConfig cfg;
        cfg.blockReconstructors = recons;
        cfg.brPerBlock = 16; // make reconstruction the bottleneck
        DeserializationUnit du(mai, cfg);
        return du.deserialize(stream, 0x100'0000'0000ULL,
                              0x9'0000'0000ULL, 0)
            .done;
    };
    EXPECT_LT(run(4), run(1));
}

TEST_F(AccelFixture, DuBlocksCoverImage)
{
    Rng rng(4);
    Addr root = micro.buildList(src, 300, rng);
    CerealSerializer ser;
    ser.registerAll(reg);
    auto stream = ser.serializeToStream(src, root);
    Mai mai(dram, 64);
    DeserializationUnit du(mai, AccelConfig());
    auto r = du.deserialize(stream, 0x100'0000'0000ULL,
                            0x9'0000'0000ULL, 0);
    EXPECT_EQ(r.blocks, (stream.totalGraphBytes + 63) / 64);
    EXPECT_EQ(r.bytesWritten, stream.totalGraphBytes);
    EXPECT_GT(r.bytesRead, 0u);
}

TEST_F(AccelFixture, DeviceSchedulesAcrossUnits)
{
    Rng rng(5);
    CerealDevice dev(dram);
    std::vector<Addr> roots;
    for (int i = 0; i < 4; ++i) {
        roots.push_back(micro.buildList(src, 500, rng));
    }
    // Submit all at tick 0: each should land on a distinct SU.
    std::set<unsigned> units;
    for (Addr r : roots) {
        units.insert(dev.serialize(src, r, 0).unit);
    }
    EXPECT_EQ(units.size(), 4u);
}

TEST_F(AccelFixture, DeviceSerialisesOnBusyUnits)
{
    Rng rng(6);
    AccelConfig one_unit;
    one_unit.numSU = 1;
    CerealDevice dev(dram, one_unit);
    Addr r1 = micro.buildList(src, 500, rng);
    Addr r2 = micro.buildList(src, 500, rng);
    auto a = dev.serialize(src, r1, 0);
    auto b = dev.serialize(src, r2, 0);
    EXPECT_EQ(a.unit, 0u);
    EXPECT_EQ(b.unit, 0u);
    EXPECT_GE(b.start, a.done); // queued behind the first op
}

TEST(AreaPower, TotalsMatchTableV)
{
    AreaPowerModel m;
    EXPECT_NEAR(m.totalAreaMm2(), 3.857, 0.01);
    EXPECT_NEAR(m.totalPowerMw(), 1231.6, 1.0);
    // Paper: 612.5x less area than the host die, 113.7x less power.
    EXPECT_NEAR(AreaPowerModel::kHostDieAreaMm2 / m.totalAreaMm2(), 612.5,
                2.0);
    EXPECT_NEAR(AreaPowerModel::kHostTdpWatts /
                    (m.totalPowerMw() * 1e-3),
                113.7, 1.0);
}

TEST(AreaPower, SubtotalsMatchTableV)
{
    AreaPowerModel m;
    double ser_area = 0, ser_power = 0;
    for (const auto &mod : m.serializerModules()) {
        ser_area += mod.totalArea();
        ser_power += mod.totalPower();
    }
    EXPECT_NEAR(ser_area, 0.464, 0.005);
    EXPECT_NEAR(ser_power, 264.8, 0.5);

    double de_area = 0, de_power = 0;
    for (const auto &mod : m.deserializerModules()) {
        de_area += mod.totalArea();
        de_power += mod.totalPower();
    }
    EXPECT_NEAR(de_area, 2.248, 0.005);
    EXPECT_NEAR(de_power, 956.8, 0.5);
}

TEST(AreaPower, EnergyScalesWithTime)
{
    AreaPowerModel m;
    EXPECT_GT(m.serializeEnergyJ(1.0), 0.0);
    EXPECT_DOUBLE_EQ(m.serializeEnergyJ(2.0), 2 * m.serializeEnergyJ(1.0));
    // Software at TDP dwarfs the accelerator for equal time.
    EXPECT_GT(AreaPowerModel::softwareEnergyJ(1.0),
              100 * m.deserializeEnergyJ(1.0));
}

class ApiFixture : public AccelFixture
{
};

TEST_F(ApiFixture, WriteReadRoundTrip)
{
    Rng rng(7);
    Addr root = micro.buildTree(src, 2, 127, rng);
    CerealContext ctx(dram);
    ctx.registerAll(reg);

    ObjectOutputStream oos;
    auto w = ctx.writeObject(oos, src, root);
    EXPECT_FALSE(w.softwareFallback);
    EXPECT_GT(w.timing.done, w.timing.submit);

    ObjectInputStream ois(oos.bytes());
    auto r = ctx.readObject(ois, dst);
    std::string why;
    EXPECT_TRUE(graphEquals(src, root, dst, r.root, &why)) << why;
    EXPECT_TRUE(ois.done());
}

TEST_F(ApiFixture, MultipleRecordsInOneStream)
{
    Rng rng(8);
    CerealContext ctx(dram);
    ctx.registerAll(reg);
    Addr r1 = micro.buildList(src, 20, rng);
    Addr r2 = micro.buildTree(src, 2, 31, rng);

    ObjectOutputStream oos;
    ctx.writeObject(oos, src, r1);
    ctx.writeObject(oos, src, r2);
    EXPECT_EQ(oos.records(), 2u);

    ObjectInputStream ois(oos.bytes());
    auto a = ctx.readObject(ois, dst);
    auto b = ctx.readObject(ois, dst);
    EXPECT_TRUE(graphEquals(src, r1, dst, a.root));
    EXPECT_TRUE(graphEquals(src, r2, dst, b.root));
}

TEST_F(ApiFixture, SharedConflictFallsBackToSoftware)
{
    Rng rng(9);
    Addr root = micro.buildList(src, 100, rng);
    CerealContext ctx(dram);
    ctx.registerAll(reg);

    ObjectOutputStream oos;
    auto hw = ctx.writeObject(oos, src, root, 0, false);
    auto sw = ctx.writeObject(oos, src, root, 0, true);
    EXPECT_TRUE(sw.softwareFallback);
    // The fallback still produced a valid record...
    ObjectInputStream ois(oos.bytes());
    ctx.readObject(ois, dst);
    auto r2 = ctx.readObject(ois, dst);
    EXPECT_TRUE(graphEquals(src, root, dst, r2.root));
    // ...but costs far more time than the accelerator path.
    EXPECT_GT(sw.timing.latencySeconds, hw.timing.latencySeconds);
}

TEST_F(ApiFixture, DeviceBusyTimeAccumulates)
{
    Rng rng(10);
    Addr root = micro.buildList(src, 200, rng);
    CerealContext ctx(dram);
    ctx.registerAll(reg);
    EXPECT_EQ(ctx.device().suBusyTicks(), 0u);
    ObjectOutputStream oos;
    ctx.writeObject(oos, src, root);
    EXPECT_GT(ctx.device().suBusyTicks(), 0u);
    ObjectInputStream ois(oos.bytes());
    ctx.readObject(ois, dst);
    EXPECT_GT(ctx.device().duBusyTicks(), 0u);
}

} // namespace
} // namespace cereal
